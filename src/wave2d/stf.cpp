#include "quake/wave2d/stf.hpp"

namespace quake::wave2d {

double ramp_g(double t, double t0) {
  if (t <= 0.0) return 0.0;
  if (t >= t0) return 1.0;
  const double x = t / t0;
  if (x < 0.5) return 2.0 * x * x;
  return 1.0 - 2.0 * (1.0 - x) * (1.0 - x);
}

double ramp_g_dot(double t, double t0) {
  if (t <= 0.0 || t >= t0) return 0.0;
  const double x = t / t0;
  const double peak = 2.0 / t0;
  return x < 0.5 ? peak * (2.0 * x) : peak * (2.0 * (1.0 - x));
}

double ramp_g_dt0(double t, double t0) {
  if (t <= 0.0 || t >= t0) return 0.0;
  const double x = t / t0;
  // x < 1/2: g = 2 t^2 / t0^2        -> dg/dt0 = -4 t^2 / t0^3
  // x >= 1/2: g = 1 - 2 (1 - t/t0)^2 -> dg/dt0 = -4 t (t0 - t) / t0^3
  if (x < 0.5) return -4.0 * t * t / (t0 * t0 * t0);
  return -4.0 * t * (t0 - t) / (t0 * t0 * t0);
}

}  // namespace quake::wave2d
