#include "quake/wave2d/march.hpp"

#include <stdexcept>

namespace quake::wave2d {

ShStepper::ShStepper(const ShModel& model, double dt)
    : model_(&model), dt_(dt) {
  if (!(dt > 0.0)) throw std::invalid_argument("ShStepper: dt > 0 required");
  const std::size_t n = static_cast<std::size_t>(model.grid().n_nodes());
  const auto mass = model.mass();
  const auto damp = model.damping();
  inv_ap_.resize(n);
  am_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    inv_ap_[i] = 1.0 / (mass[i] + 0.5 * dt * damp[i]);
    am_[i] = mass[i] - 0.5 * dt * damp[i];
  }
  u_.assign(n, 0.0);
  u_prev_.assign(n, 0.0);
  u_next_.resize(n);
  f_.resize(n);
  ku_.resize(n);
}

void ShStepper::set_state(std::span<const double> u,
                          std::span<const double> u_prev) {
  if (u.empty()) {
    std::fill(u_.begin(), u_.end(), 0.0);
  } else {
    u_.assign(u.begin(), u.end());
  }
  if (u_prev.empty()) {
    std::fill(u_prev_.begin(), u_prev_.end(), 0.0);
  } else {
    u_prev_.assign(u_prev.begin(), u_prev.end());
  }
}

void ShStepper::step(int k, const RhsFn& rhs) {
  const std::size_t n = u_.size();
  std::fill(f_.begin(), f_.end(), 0.0);
  rhs(k, k * dt_, f_);
  std::fill(ku_.begin(), ku_.end(), 0.0);
  model_->apply_k(u_, ku_);
  const auto mass = model_->mass();
  const double dt2 = dt_ * dt_;
  for (std::size_t i = 0; i < n; ++i) {
    u_next_[i] =
        (dt2 * (f_[i] - ku_[i]) + 2.0 * mass[i] * u_[i] - am_[i] * u_prev_[i]) *
        inv_ap_[i];
  }
  std::swap(u_prev_, u_);
  std::swap(u_, u_next_);
}

MarchResult time_march(const ShModel& model, const MarchOptions& opt,
                       const RhsFn& rhs, std::span<const int> receiver_nodes,
                       bool store_history) {
  if (!(opt.dt > 0.0) || opt.nt < 1) {
    throw std::invalid_argument("time_march: bad dt or nt");
  }
  ShStepper stepper(model, opt.dt);

  MarchResult out;
  if (store_history) out.history.reserve(static_cast<std::size_t>(opt.nt));
  out.records.assign(receiver_nodes.size(), {});
  for (auto& r : out.records) r.reserve(static_cast<std::size_t>(opt.nt));

  for (int k = 0; k < opt.nt; ++k) {
    stepper.step(k, rhs);
    if (store_history) out.history.push_back(stepper.u());
    for (std::size_t r = 0; r < receiver_nodes.size(); ++r) {
      out.records[r].push_back(
          stepper.u()[static_cast<std::size_t>(receiver_nodes[r])]);
    }
  }
  return out;
}

}  // namespace quake::wave2d
