#pragma once

// Explicit central-difference time marching for the antiplane model:
//   (M + dt/2 C) u^{k+1} = dt^2 (f^k - K u^k) + 2 M u^k - (M - dt/2 C) u^{k-1}
// from quiescent initial conditions. The same recurrence (with symmetric M,
// C, K) marches the state, the adjoint (in reversed time), and the
// incremental (tangent) equations — only the right-hand side differs, so it
// is supplied as a callback.

#include <functional>
#include <span>
#include <vector>

#include "quake/wave2d/sh_model.hpp"

namespace quake::wave2d {

struct MarchOptions {
  double dt = 0.0;
  int nt = 0;
};

// Fills `f` (pre-zeroed) with the force at step k (time t = k * dt).
// For the adjoint march the callback receives the reversed step index.
using RhsFn = std::function<void(int k, double t, std::span<double> f)>;

struct MarchResult {
  // history[k] = u^{k+1} for k = 0..nt-1 (empty unless requested);
  // u^0 = 0 by the quiescent initial condition.
  std::vector<std::vector<double>> history;
  // records[r][k] = u^{k+1} at receiver node r.
  std::vector<std::vector<double>> records;
};

MarchResult time_march(const ShModel& model, const MarchOptions& opt,
                       const RhsFn& rhs, std::span<const int> receiver_nodes,
                       bool store_history);

// Single-step driver underlying time_march; exposed for the checkpointed
// adjoint (Griewank), which restarts segments from stored (u, u_prev) pairs.
class ShStepper {
 public:
  ShStepper(const ShModel& model, double dt);

  // Restores the state (u^k, u^{k-1}); pass empty spans for quiescence.
  void set_state(std::span<const double> u, std::span<const double> u_prev);

  // Advances one step using rhs(k, k*dt, f); afterwards u() is u^{k+1}.
  void step(int k, const RhsFn& rhs);

  [[nodiscard]] const std::vector<double>& u() const { return u_; }
  [[nodiscard]] const std::vector<double>& u_prev() const { return u_prev_; }

 private:
  const ShModel* model_;
  double dt_;
  std::vector<double> inv_ap_, am_;
  std::vector<double> u_, u_prev_, u_next_, f_, ku_;
};

}  // namespace quake::wave2d
