#pragma once

// Regular 2D grid for the antiplane (SH) inversion experiments (§3.2): a
// vertical cross-section of a basin, x horizontal, z depth (z = 0 is the
// free surface). Bilinear quad elements of edge h.

#include <cstddef>
#include <stdexcept>

namespace quake::wave2d {

struct ShGrid {
  int nx = 0;     // elements in x
  int nz = 0;     // elements in z
  double h = 0.0; // element edge [m]

  [[nodiscard]] int n_nodes() const { return (nx + 1) * (nz + 1); }
  [[nodiscard]] int n_elems() const { return nx * nz; }
  [[nodiscard]] double width() const { return nx * h; }
  [[nodiscard]] double depth() const { return nz * h; }

  // Node (i, k): i in [0, nx], k in [0, nz]; k = 0 is the surface row.
  [[nodiscard]] int node(int i, int k) const { return k * (nx + 1) + i; }
  // Element (i, k): i in [0, nx), k in [0, nz).
  [[nodiscard]] int elem(int i, int k) const { return k * nx + i; }

  // Tensor-ordered element connectivity: (i,k), (i+1,k), (i,k+1), (i+1,k+1).
  void elem_nodes(int e, int out[4]) const {
    const int i = e % nx;
    const int k = e / nx;
    out[0] = node(i, k);
    out[1] = node(i + 1, k);
    out[2] = node(i, k + 1);
    out[3] = node(i + 1, k + 1);
  }

  void validate() const {
    if (nx < 1 || nz < 1 || !(h > 0.0)) {
      throw std::invalid_argument("ShGrid: bad dimensions");
    }
  }
};

}  // namespace quake::wave2d
