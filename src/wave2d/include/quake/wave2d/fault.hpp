#pragma once

// The fault-line dislocation source of the 2D inversion (§3.1-3.2): a
// vertical strike-slip fault perpendicular to the section, appearing as a
// dipole along the fault trace,
//     b = -div( mu u0 g(t - T; t0) delta(Sigma) n_Sigma ),
// with per-fault-node dislocation amplitude u0(z), rise time t0(z), and
// delay time T(z). The weak form turns each fault node into a force couple
// on the two node columns either side of the fault line.
//
// Because b is proportional to the local mu, the material inversion must
// account for df/dmu; those hooks are provided here alongside the source
// parameter derivatives needed for source inversion (eqs. 3.5-3.7).

#include <span>
#include <vector>

#include "quake/wave2d/sh_model.hpp"

namespace quake::wave2d {

struct Fault2d {
  int i = 0;       // fault on the grid line x = i * h; requires 1 <= i < nx
  int k_top = 0;   // node range along depth (inclusive)
  int k_bot = 0;

  [[nodiscard]] int n_points() const { return k_bot - k_top + 1; }
};

// Per-fault-node source parameters (arrays of length fault.n_points()).
struct SourceParams2d {
  std::vector<double> u0;  // dislocation amplitude [m]
  std::vector<double> t0;  // rise time [s]
  std::vector<double> T;   // delay time [s]
};

// Builds constant-parameter arrays with the delay set by a rupture
// propagating from the hypocenter node index at `rupture_velocity`.
SourceParams2d make_rupture_params(const ShGrid& grid, const Fault2d& fault,
                                   double u0, double t0, int hypo_k,
                                   double rupture_velocity);

class FaultSource2d {
 public:
  FaultSource2d(const ShGrid& grid, const Fault2d& fault);

  [[nodiscard]] const Fault2d& fault() const { return fault_; }

  // f += b(t). Uses the model's element mu at the fault.
  void add_forces(const ShModel& model, const SourceParams2d& p, double t,
                  std::span<double> f) const;

  // f += d b/d mu [dmu] (t) — incremental force for a material perturbation.
  void add_forces_delta_mu(const ShModel& model, const SourceParams2d& p,
                           std::span<const double> dmu, double t,
                           std::span<double> f) const;

  // f += d b/d params [du0, dt0, dT] (t) — incremental force for a source
  // parameter perturbation (any span may be empty to skip it).
  void add_forces_delta_params(const ShModel& model, const SourceParams2d& p,
                               std::span<const double> du0,
                               std::span<const double> dt0,
                               std::span<const double> dT, double t,
                               std::span<double> f) const;

  // ge[e] += lambda^T db/dmu_e (t) — material sensitivity of the source.
  void accumulate_material_form(const ShModel& model, const SourceParams2d& p,
                                double t, std::span<const double> lambda,
                                std::span<double> ge) const;

  // g_*[j] += lambda^T db/dparam_j (t) — source parameter sensitivities.
  void accumulate_param_forms(const ShModel& model, const SourceParams2d& p,
                              double t, std::span<const double> lambda,
                              std::span<double> g_u0, std::span<double> g_t0,
                              std::span<double> g_T) const;

 private:
  struct Point {
    int node_plus, node_minus;  // force couple nodes (i+1, k), (i-1, k)
    double length;              // quadrature weight (h, or h/2 at the ends)
    std::vector<int> adj_elems; // elements whose mu enters mu_bar
  };

  // mu averaged over the elements adjacent to fault point j.
  [[nodiscard]] double mu_bar(const ShModel& model, std::size_t j) const;

  ShGrid grid_;
  Fault2d fault_;
  std::vector<Point> points_;
};

}  // namespace quake::wave2d
