#pragma once

// Discrete antiplane shear wave model (§3.1):
//   rho u'' - div(mu grad u) = b   in Omega,
//   mu du/dn = 0                   on the free surface,
//   mu du/dn = -sqrt(rho mu) u'    on the absorbing sides/bottom,
// discretized with bilinear quads (lumped mass, lumped boundary dashpots).
// Also provides the directional derivatives with respect to the element
// shear moduli that the adjoint gradient and the Gauss-Newton
// Hessian-vector products need.

#include <array>
#include <span>
#include <vector>

#include "quake/wave2d/grid.hpp"

namespace quake::wave2d {

// Reference bilinear Laplacian on the unit square (edge-length independent
// in 2D); row-major 4x4 in tensor node order.
const std::array<double, 16>& quad_laplacian_reference();

class ShModel {
 public:
  // `mu` has one entry per element; `rho` is the (known) uniform density.
  ShModel(const ShGrid& grid, std::vector<double> mu, double rho);

  [[nodiscard]] const ShGrid& grid() const { return grid_; }
  [[nodiscard]] std::span<const double> mu() const { return mu_; }
  [[nodiscard]] double rho() const { return rho_; }

  // y += K(mu) u.
  void apply_k(std::span<const double> u, std::span<double> y) const;
  // y += K(dmu) u — the stiffness derivative in direction dmu.
  void apply_k_delta(std::span<const double> dmu, std::span<const double> u,
                     std::span<double> y) const;

  [[nodiscard]] std::span<const double> mass() const { return mass_; }
  // Diagonal boundary dashpot C(mu).
  [[nodiscard]] std::span<const double> damping() const { return damping_; }
  // y += dC/dmu[dmu] * v — derivative of the dashpot diagonal.
  void apply_c_delta(std::span<const double> dmu, std::span<const double> v,
                     std::span<double> y) const;

  // ge[e] += lambda^T K_e u / mu_e-free form: the element bilinear value
  // lambda^T K_ref u (the factor multiplying mu_e in K).
  void accumulate_k_form(std::span<const double> lambda,
                         std::span<const double> u,
                         std::span<double> ge) const;
  // ge[e] += lambda^T (dC/dmu_e) v — dashpot sensitivity per element.
  void accumulate_c_form(std::span<const double> lambda,
                         std::span<const double> v,
                         std::span<double> ge) const;

  // CFL bound: h / max(vs).
  [[nodiscard]] double stable_dt(double cfl_fraction) const;

 private:
  struct BoundaryEdge {
    int node_a, node_b;  // endpoints
    int elem;            // owning element (its mu sets the impedance)
  };

  ShGrid grid_;
  std::vector<double> mu_;
  double rho_;
  std::vector<double> mass_;
  std::vector<double> damping_;
  std::vector<BoundaryEdge> edges_;
};

}  // namespace quake::wave2d
