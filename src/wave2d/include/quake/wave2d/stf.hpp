#pragma once

// The paper's dislocation time function (Fig 3.1): g rises from 0 to 1 over
// the rise time t0 with a triangular (isosceles, unit-area) slip velocity.
// The inversion needs g and its derivatives with respect to time, rise
// time, and delay time (eqs. 3.5-3.7).

namespace quake::wave2d {

// g(t; t0): 0 for t <= 0, 1 for t >= t0, quadratic ramp between.
double ramp_g(double t, double t0);

// dg/dt: triangular slip velocity, peak 2/t0 at t = t0/2.
double ramp_g_dot(double t, double t0);

// dg/dt0 at fixed t.
double ramp_g_dt0(double t, double t0);

}  // namespace quake::wave2d
