#include "quake/wave2d/fault.hpp"

#include <cmath>
#include <stdexcept>

#include "quake/wave2d/stf.hpp"

namespace quake::wave2d {

SourceParams2d make_rupture_params(const ShGrid& grid, const Fault2d& fault,
                                   double u0, double t0, int hypo_k,
                                   double rupture_velocity) {
  const int n = fault.n_points();
  SourceParams2d p;
  p.u0.assign(static_cast<std::size_t>(n), u0);
  p.t0.assign(static_cast<std::size_t>(n), t0);
  p.T.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const double dist = std::abs(fault.k_top + j - hypo_k) * grid.h;
    p.T[static_cast<std::size_t>(j)] = dist / rupture_velocity;
  }
  return p;
}

FaultSource2d::FaultSource2d(const ShGrid& grid, const Fault2d& fault)
    : grid_(grid), fault_(fault) {
  if (fault.i < 1 || fault.i >= grid.nx || fault.k_top < 0 ||
      fault.k_bot > grid.nz || fault.k_top > fault.k_bot) {
    throw std::invalid_argument("FaultSource2d: fault outside grid");
  }
  const int n = fault.n_points();
  points_.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const int k = fault.k_top + j;
    Point pt;
    pt.node_plus = grid.node(fault.i + 1, k);
    pt.node_minus = grid.node(fault.i - 1, k);
    pt.length = (j == 0 || j == n - 1) ? grid.h / 2.0 : grid.h;
    for (int di = -1; di <= 0; ++di) {
      for (int dk = -1; dk <= 0; ++dk) {
        const int ei = fault.i + di;
        const int ek = k + dk;
        if (ei >= 0 && ei < grid.nx && ek >= 0 && ek < grid.nz) {
          pt.adj_elems.push_back(grid.elem(ei, ek));
        }
      }
    }
    points_.push_back(std::move(pt));
  }
}

double FaultSource2d::mu_bar(const ShModel& model, std::size_t j) const {
  const Point& pt = points_[j];
  double s = 0.0;
  for (int e : pt.adj_elems) s += model.mu()[static_cast<std::size_t>(e)];
  return s / static_cast<double>(pt.adj_elems.size());
}

void FaultSource2d::add_forces(const ShModel& model, const SourceParams2d& p,
                               double t, std::span<double> f) const {
  for (std::size_t j = 0; j < points_.size(); ++j) {
    const double g = ramp_g(t - p.T[j], p.t0[j]);
    if (g == 0.0) continue;
    const double s =
        points_[j].length * mu_bar(model, j) * p.u0[j] * g / grid_.h;
    f[static_cast<std::size_t>(points_[j].node_plus)] += s;
    f[static_cast<std::size_t>(points_[j].node_minus)] -= s;
  }
}

void FaultSource2d::add_forces_delta_mu(const ShModel& model,
                                        const SourceParams2d& p,
                                        std::span<const double> dmu, double t,
                                        std::span<double> f) const {
  for (std::size_t j = 0; j < points_.size(); ++j) {
    const double g = ramp_g(t - p.T[j], p.t0[j]);
    if (g == 0.0) continue;
    const Point& pt = points_[j];
    double dmu_bar = 0.0;
    for (int e : pt.adj_elems) dmu_bar += dmu[static_cast<std::size_t>(e)];
    dmu_bar /= static_cast<double>(pt.adj_elems.size());
    const double s = pt.length * dmu_bar * p.u0[j] * g / grid_.h;
    f[static_cast<std::size_t>(pt.node_plus)] += s;
    f[static_cast<std::size_t>(pt.node_minus)] -= s;
  }
}

void FaultSource2d::add_forces_delta_params(
    const ShModel& model, const SourceParams2d& p, std::span<const double> du0,
    std::span<const double> dt0, std::span<const double> dT, double t,
    std::span<double> f) const {
  for (std::size_t j = 0; j < points_.size(); ++j) {
    const Point& pt = points_[j];
    const double mu = mu_bar(model, j);
    const double s = t - p.T[j];
    double dstrength = 0.0;
    if (!du0.empty()) dstrength += du0[j] * ramp_g(s, p.t0[j]);
    if (!dt0.empty()) dstrength += p.u0[j] * ramp_g_dt0(s, p.t0[j]) * dt0[j];
    if (!dT.empty()) dstrength -= p.u0[j] * ramp_g_dot(s, p.t0[j]) * dT[j];
    if (dstrength == 0.0) continue;
    const double v = pt.length * mu * dstrength / grid_.h;
    f[static_cast<std::size_t>(pt.node_plus)] += v;
    f[static_cast<std::size_t>(pt.node_minus)] -= v;
  }
}

void FaultSource2d::accumulate_material_form(const ShModel& model,
                                             const SourceParams2d& p, double t,
                                             std::span<const double> lambda,
                                             std::span<double> ge) const {
  (void)model;
  for (std::size_t j = 0; j < points_.size(); ++j) {
    const double g = ramp_g(t - p.T[j], p.t0[j]);
    if (g == 0.0) continue;
    const Point& pt = points_[j];
    const double ldiff = lambda[static_cast<std::size_t>(pt.node_plus)] -
                         lambda[static_cast<std::size_t>(pt.node_minus)];
    const double base = pt.length * p.u0[j] * g / grid_.h * ldiff /
                        static_cast<double>(pt.adj_elems.size());
    for (int e : pt.adj_elems) ge[static_cast<std::size_t>(e)] += base;
  }
}

void FaultSource2d::accumulate_param_forms(const ShModel& model,
                                           const SourceParams2d& p, double t,
                                           std::span<const double> lambda,
                                           std::span<double> g_u0,
                                           std::span<double> g_t0,
                                           std::span<double> g_T) const {
  for (std::size_t j = 0; j < points_.size(); ++j) {
    const Point& pt = points_[j];
    const double mu = mu_bar(model, j);
    const double ldiff = lambda[static_cast<std::size_t>(pt.node_plus)] -
                         lambda[static_cast<std::size_t>(pt.node_minus)];
    const double base = pt.length * mu / grid_.h * ldiff;
    const double s = t - p.T[j];
    if (!g_u0.empty()) g_u0[j] += base * ramp_g(s, p.t0[j]);
    if (!g_t0.empty()) g_t0[j] += base * p.u0[j] * ramp_g_dt0(s, p.t0[j]);
    if (!g_T.empty()) g_T[j] -= base * p.u0[j] * ramp_g_dot(s, p.t0[j]);
  }
}

}  // namespace quake::wave2d
