#include "quake/mesh/meshgen.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "quake/octree/etree_store.hpp"

namespace quake::mesh {
namespace {

using octree::kMaxLevel;
using octree::kTicks;
using octree::LinearOctree;
using octree::Octant;

// Vertex lattice key. Vertices live on tick coordinates in [0, kTicks]
// (inclusive at the far face), so the key base is kTicks + 1.
std::uint64_t vertex_key(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  constexpr std::uint64_t kBase = std::uint64_t{kTicks} + 1;
  return (static_cast<std::uint64_t>(x) * kBase + y) * kBase + z;
}

// Local tensor-node offsets: node i at ((i&1), (i>>1)&1, (i>>2)&1).
constexpr std::array<std::array<std::uint32_t, 3>, 8> kCorner = {{
    {{0, 0, 0}}, {{1, 0, 0}}, {{0, 1, 0}}, {{1, 1, 0}},
    {{0, 0, 1}}, {{1, 0, 1}}, {{0, 1, 1}}, {{1, 1, 1}},
}};

// The 12 element edges as local node pairs (tensor ordering).
constexpr std::array<std::array<int, 2>, 12> kEdges = {{
    {{0, 1}}, {{2, 3}}, {{4, 5}}, {{6, 7}},  // x-aligned
    {{0, 2}}, {{1, 3}}, {{4, 6}}, {{5, 7}},  // y-aligned
    {{0, 4}}, {{1, 5}}, {{2, 6}}, {{3, 7}},  // z-aligned
}};

// The 6 element faces as local node quadruples, indexed by BoundarySide.
constexpr std::array<std::array<int, 4>, 6> kFaces = {{
    {{0, 2, 4, 6}},  // x = 0
    {{1, 3, 5, 7}},  // x = 1
    {{0, 1, 4, 5}},  // y = 0
    {{2, 3, 6, 7}},  // y = 1
    {{0, 1, 2, 3}},  // z = 0 (free surface side)
    {{4, 5, 6, 7}},  // z = 1 (bottom)
}};

}  // namespace

octree::RefinePolicy wavelength_policy(const vel::VelocityModel& model,
                                       const MeshOptions& opt) {
  if (!(opt.domain_size > 0.0)) {
    throw std::invalid_argument("MeshOptions: domain_size must be positive");
  }
  const double m_per_tick = opt.domain_size / static_cast<double>(kTicks);
  return [&model, opt, m_per_tick](const Octant& o) {
    if (o.level < opt.min_level) return true;
    if (o.level >= opt.max_level) return false;
    const double s_m = static_cast<double>(o.size()) * m_per_tick;
    // Minimum shear velocity sampled at the centroid and the 8 corners.
    double vs_min = std::numeric_limits<double>::max();
    const double x0 = o.x * m_per_tick, y0 = o.y * m_per_tick,
                 z0 = o.z * m_per_tick;
    for (const auto& c : kCorner) {
      vs_min = std::min(vs_min,
                        model.at(x0 + c[0] * s_m, y0 + c[1] * s_m,
                                 z0 + c[2] * s_m)
                            .vs());
    }
    vs_min = std::min(
        vs_min, model.at(x0 + 0.5 * s_m, y0 + 0.5 * s_m, z0 + 0.5 * s_m).vs());
    const double h_needed =
        vel::element_size_for(vs_min, opt.f_max, opt.n_lambda);
    return s_m > h_needed;
  };
}

octree::LinearOctree build_balanced_octree(const vel::VelocityModel& model,
                                           const MeshOptions& opt) {
  LinearOctree tree = build_octree(wavelength_policy(model, opt), opt.max_level);
  // Full (face+edge+corner) balance keeps hanging-node masters independent
  // in almost all configurations; residual chains are resolved in transform.
  return balance(tree, octree::BalanceScope::kAll);
}

HexMesh transform(const LinearOctree& tree, const vel::VelocityModel& model,
                  const MeshOptions& opt) {
  HexMesh mesh;
  mesh.domain.size = opt.domain_size;
  const double m_per_tick = opt.domain_size / static_cast<double>(kTicks);

  const std::size_t ne = tree.size();
  mesh.elem_nodes.reserve(ne);
  mesh.elem_size.reserve(ne);
  mesh.elem_level.reserve(ne);
  mesh.elem_mat.reserve(ne);

  std::unordered_map<std::uint64_t, NodeId> node_of;
  node_of.reserve(ne * 2);

  auto get_node = [&](std::uint32_t x, std::uint32_t y,
                      std::uint32_t z) -> NodeId {
    const std::uint64_t key = vertex_key(x, y, z);
    auto [it, inserted] = node_of.emplace(
        key, static_cast<NodeId>(mesh.node_coords.size()));
    if (inserted) {
      mesh.node_coords.push_back(
          {x * m_per_tick, y * m_per_tick, z * m_per_tick});
    }
    return it->second;
  };

  // Pass 1: elements, nodes, boundary faces, materials.
  for (std::size_t e = 0; e < ne; ++e) {
    const Octant& o = tree[e];
    const std::uint32_t s = o.size();
    std::array<NodeId, 8> conn;
    for (int i = 0; i < 8; ++i) {
      conn[static_cast<std::size_t>(i)] =
          get_node(o.x + kCorner[static_cast<std::size_t>(i)][0] * s,
                   o.y + kCorner[static_cast<std::size_t>(i)][1] * s,
                   o.z + kCorner[static_cast<std::size_t>(i)][2] * s);
    }
    mesh.elem_nodes.push_back(conn);
    const double s_m = s * m_per_tick;
    mesh.elem_size.push_back(s_m);
    mesh.elem_level.push_back(o.level);
    mesh.elem_mat.push_back(model.at((o.x + 0.5 * s) * m_per_tick,
                                     (o.y + 0.5 * s) * m_per_tick,
                                     (o.z + 0.5 * s) * m_per_tick));
    const ElemId eid = static_cast<ElemId>(e);
    if (o.x == 0) mesh.boundary_faces.push_back({eid, BoundarySide::kXMin});
    if (o.x + s == kTicks)
      mesh.boundary_faces.push_back({eid, BoundarySide::kXMax});
    if (o.y == 0) mesh.boundary_faces.push_back({eid, BoundarySide::kYMin});
    if (o.y + s == kTicks)
      mesh.boundary_faces.push_back({eid, BoundarySide::kYMax});
    if (o.z == 0) mesh.boundary_faces.push_back({eid, BoundarySide::kZMin});
    if (o.z + s == kTicks)
      mesh.boundary_faces.push_back({eid, BoundarySide::kZMax});
  }

  // Pass 2: hanging-node detection. A node that coincides with an edge
  // midpoint (resp. face center) of some element hangs on that element's
  // edge (resp. face); with the 2-to-1 balance, every hanging node arises
  // this way.
  struct RawConstraint {
    std::array<NodeId, 4> masters;
    int n;
  };
  std::unordered_map<NodeId, RawConstraint> raw;
  for (std::size_t e = 0; e < ne; ++e) {
    const Octant& o = tree[e];
    const std::uint32_t s = o.size();
    if (s < 2) continue;  // finest possible element cannot have finer neighbors
    const std::uint32_t h = s / 2;
    const auto& conn = mesh.elem_nodes[e];
    auto corner_ticks = [&](int i) -> std::array<std::uint32_t, 3> {
      const auto& c = kCorner[static_cast<std::size_t>(i)];
      return {o.x + c[0] * s, o.y + c[1] * s, o.z + c[2] * s};
    };
    for (const auto& ed : kEdges) {
      const auto a = corner_ticks(ed[0]);
      const auto b = corner_ticks(ed[1]);
      const std::array<std::uint32_t, 3> mid = {
          (a[0] + b[0]) / 2, (a[1] + b[1]) / 2, (a[2] + b[2]) / 2};
      auto it = node_of.find(vertex_key(mid[0], mid[1], mid[2]));
      if (it == node_of.end()) continue;
      raw.emplace(it->second,
                  RawConstraint{{conn[static_cast<std::size_t>(ed[0])],
                                 conn[static_cast<std::size_t>(ed[1])], 0, 0},
                                2});
    }
    for (const auto& fc : kFaces) {
      // Face center = anchor + h in the two in-face directions; average of
      // the four face-corner ticks.
      std::array<std::uint32_t, 3> c{0, 0, 0};
      for (int i : fc) {
        const auto t = corner_ticks(i);
        c[0] += t[0];
        c[1] += t[1];
        c[2] += t[2];
      }
      c = {c[0] / 4, c[1] / 4, c[2] / 4};
      auto it = node_of.find(vertex_key(c[0], c[1], c[2]));
      if (it == node_of.end()) continue;
      raw.emplace(it->second,
                  RawConstraint{{conn[static_cast<std::size_t>(fc[0])],
                                 conn[static_cast<std::size_t>(fc[1])],
                                 conn[static_cast<std::size_t>(fc[2])],
                                 conn[static_cast<std::size_t>(fc[3])]},
                                4});
      (void)h;
    }
  }

  // Pass 3: resolve chains so every stored master is independent.
  mesh.node_hanging.assign(mesh.node_coords.size(), 0);
  for (const auto& [node, rc] : raw) {
    mesh.node_hanging[static_cast<std::size_t>(node)] = 1;
    (void)rc;
  }
  mesh.constraints.reserve(raw.size());
  for (const auto& [node, rc] : raw) {
    // Expand (master, weight) pairs until no master is hanging.
    std::vector<std::pair<NodeId, double>> terms;
    for (int i = 0; i < rc.n; ++i) {
      terms.emplace_back(rc.masters[static_cast<std::size_t>(i)], 1.0 / rc.n);
    }
    for (int depth = 0; depth < 32; ++depth) {
      bool any_hanging = false;
      std::vector<std::pair<NodeId, double>> next;
      for (const auto& [m, w] : terms) {
        if (mesh.node_hanging[static_cast<std::size_t>(m)] != 0) {
          any_hanging = true;
          const RawConstraint& mc = raw.at(m);
          for (int i = 0; i < mc.n; ++i) {
            next.emplace_back(mc.masters[static_cast<std::size_t>(i)],
                              w / mc.n);
          }
        } else {
          next.emplace_back(m, w);
        }
      }
      terms = std::move(next);
      if (!any_hanging) break;
      if (depth == 31) {
        throw std::runtime_error("transform: hanging-node chain too deep");
      }
    }
    // Merge duplicates.
    std::sort(terms.begin(), terms.end());
    Constraint c{};
    c.node = node;
    c.n_masters = 0;
    for (std::size_t i = 0; i < terms.size();) {
      double w = 0.0;
      std::size_t j = i;
      while (j < terms.size() && terms[j].first == terms[i].first) {
        w += terms[j].second;
        ++j;
      }
      if (c.n_masters >= 8) {
        throw std::runtime_error("transform: constraint stencil exceeds 8");
      }
      c.masters[static_cast<std::size_t>(c.n_masters)] = terms[i].first;
      c.weights[static_cast<std::size_t>(c.n_masters)] = w;
      ++c.n_masters;
      i = j;
    }
    mesh.constraints.push_back(c);
  }
  std::sort(mesh.constraints.begin(), mesh.constraints.end(),
            [](const Constraint& a, const Constraint& b) {
              return a.node < b.node;
            });
  return mesh;
}

HexMesh generate_mesh(const vel::VelocityModel& model, const MeshOptions& opt) {
  return transform(build_balanced_octree(model, opt), model, opt);
}

HexMesh generate_mesh_out_of_core(const vel::VelocityModel& model,
                                  const MeshOptions& opt,
                                  const std::string& store_path) {
  // construct -> store (payload: centroid shear velocity, kept for
  // provenance; transform re-samples the model).
  const double m_per_tick = opt.domain_size / static_cast<double>(kTicks);
  {
    octree::EtreeStore store(store_path, sizeof(double), /*pool_pages=*/64,
                             /*create=*/true);
    const LinearOctree constructed =
        build_octree(wavelength_policy(model, opt), opt.max_level);
    for (const Octant& o : constructed.leaves()) {
      const double s = o.size() * m_per_tick;
      const double vs = model
                            .at(o.x * m_per_tick + 0.5 * s,
                                o.y * m_per_tick + 0.5 * s,
                                o.z * m_per_tick + 0.5 * s)
                            .vs();
      store.put(o, std::as_bytes(std::span<const double, 1>(&vs, 1)));
    }
    store.flush();
  }
  // balance: read back, balance in memory, re-persist the balanced tree.
  std::vector<Octant> leaves;
  {
    octree::EtreeStore store(store_path, sizeof(double), 64, /*create=*/false);
    store.scan([&leaves](const Octant& o, std::span<const std::byte>) {
      leaves.push_back(o);
    });
  }
  const LinearOctree balanced =
      balance(LinearOctree(std::move(leaves)), octree::BalanceScope::kAll);
  {
    octree::EtreeStore store(store_path + ".balanced", sizeof(double), 64,
                             /*create=*/true);
    for (const Octant& o : balanced.leaves()) {
      const double s = o.size() * m_per_tick;
      const double vs = model
                            .at(o.x * m_per_tick + 0.5 * s,
                                o.y * m_per_tick + 0.5 * s,
                                o.z * m_per_tick + 0.5 * s)
                            .vs();
      store.put(o, std::as_bytes(std::span<const double, 1>(&vs, 1)));
    }
    store.flush();
  }
  return transform(balanced, model, opt);
}

MeshStats compute_stats(const HexMesh& mesh, const vel::VelocityModel& model,
                        const MeshOptions& opt) {
  MeshStats s;
  s.n_elements = mesh.n_elements();
  s.n_nodes = mesh.n_nodes();
  s.n_hanging = mesh.n_hanging();
  s.n_independent = mesh.n_independent();
  int lo = octree::kMaxLevel, hi = 0;
  for (std::uint8_t l : mesh.elem_level) {
    lo = std::min<int>(lo, l);
    hi = std::max<int>(hi, l);
  }
  s.min_level = mesh.elem_level.empty() ? 0 : lo;
  s.max_level = mesh.elem_level.empty() ? 0 : hi;
  const double h_min =
      vel::element_size_for(model.min_vs(), opt.f_max, opt.n_lambda);
  const double n1d = opt.domain_size / h_min + 1.0;
  s.uniform_equivalent_points = n1d * n1d * n1d;
  return s;
}

}  // namespace quake::mesh
