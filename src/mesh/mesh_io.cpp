#include "quake/mesh/mesh_io.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "quake/octree/etree_store.hpp"

namespace quake::mesh {
namespace {

using octree::kMaxLevel;
using octree::kTicks;
using octree::Octant;

#pragma pack(push, 1)
struct ElemRecord {
  std::int32_t conn[8];
  double size;
  std::uint8_t level;
  double rho, lambda, mu;
};

struct NodeRecord {
  std::int32_t id;
  double x, y, z;
  std::uint8_t hanging;
  std::int8_t n_masters;
  std::int32_t masters[8];
  double weights[8];
};
#pragma pack(pop)

std::uint32_t to_tick(double meters, double m_per_tick) {
  return static_cast<std::uint32_t>(std::llround(meters / m_per_tick));
}

// Node keys: node ticks are even for any mesh of level <= kMaxLevel - 1, so
// tick/2 fits the 21-bit Morton range even at the far domain face.
Octant node_key(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  if ((x | y | z) & 1u) {
    throw std::runtime_error("mesh_io: node on an odd tick (level too deep)");
  }
  return Octant{x >> 1, y >> 1, z >> 1, kMaxLevel};
}

}  // namespace

MeshDbStats save_mesh(const HexMesh& mesh, const std::string& path) {
  const double m_per_tick =
      mesh.domain.size / static_cast<double>(kTicks);
  MeshDbStats stats;

  {
    octree::EtreeStore elems(path + ".elem", sizeof(ElemRecord), 128,
                             /*create=*/true);
    for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
      const auto& anchor =
          mesh.node_coords[static_cast<std::size_t>(mesh.elem_nodes[e][0])];
      const Octant o{to_tick(anchor[0], m_per_tick),
                     to_tick(anchor[1], m_per_tick),
                     to_tick(anchor[2], m_per_tick), mesh.elem_level[e]};
      ElemRecord rec{};
      for (int i = 0; i < 8; ++i) {
        rec.conn[i] = mesh.elem_nodes[e][static_cast<std::size_t>(i)];
      }
      rec.size = mesh.elem_size[e];
      rec.level = mesh.elem_level[e];
      rec.rho = mesh.elem_mat[e].rho;
      rec.lambda = mesh.elem_mat[e].lambda;
      rec.mu = mesh.elem_mat[e].mu;
      elems.put(o, std::as_bytes(std::span<const ElemRecord, 1>(&rec, 1)));
      ++stats.element_records;
    }
    elems.flush();
  }

  {
    // Constraint lookup by node.
    std::vector<const Constraint*> cons_of(mesh.n_nodes(), nullptr);
    for (const Constraint& c : mesh.constraints) {
      cons_of[static_cast<std::size_t>(c.node)] = &c;
    }
    octree::EtreeStore nodes(path + ".node", sizeof(NodeRecord), 128,
                             /*create=*/true);
    for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
      const auto& c = mesh.node_coords[n];
      NodeRecord rec{};
      rec.id = static_cast<std::int32_t>(n);
      rec.x = c[0];
      rec.y = c[1];
      rec.z = c[2];
      rec.hanging = mesh.node_hanging[n];
      if (const Constraint* con = cons_of[n]) {
        rec.n_masters = static_cast<std::int8_t>(con->n_masters);
        for (int i = 0; i < con->n_masters; ++i) {
          rec.masters[i] = con->masters[static_cast<std::size_t>(i)];
          rec.weights[i] = con->weights[static_cast<std::size_t>(i)];
        }
      } else {
        rec.n_masters = 0;
      }
      nodes.put(node_key(to_tick(c[0], m_per_tick), to_tick(c[1], m_per_tick),
                         to_tick(c[2], m_per_tick)),
                std::as_bytes(std::span<const NodeRecord, 1>(&rec, 1)));
      ++stats.node_records;
    }
    nodes.flush();
  }

  // Plain-text metadata sidecar.
  std::FILE* f = std::fopen((path + ".meta").c_str(), "w");
  if (f == nullptr) throw std::runtime_error("save_mesh: cannot write meta");
  std::fprintf(f, "domain_size %.17g\nelements %zu\nnodes %zu\n",
               mesh.domain.size, mesh.n_elements(), mesh.n_nodes());
  std::fclose(f);
  return stats;
}

HexMesh load_mesh(const std::string& path) {
  HexMesh mesh;
  std::size_t n_elems = 0, n_nodes = 0;
  {
    std::FILE* f = std::fopen((path + ".meta").c_str(), "r");
    if (f == nullptr) throw std::runtime_error("load_mesh: missing meta");
    if (std::fscanf(f, "domain_size %lg\nelements %zu\nnodes %zu",
                    &mesh.domain.size, &n_elems, &n_nodes) != 3) {
      std::fclose(f);
      throw std::runtime_error("load_mesh: bad meta");
    }
    std::fclose(f);
  }

  mesh.node_coords.assign(n_nodes, {});
  mesh.node_hanging.assign(n_nodes, 0);
  {
    octree::EtreeStore nodes(path + ".node", sizeof(NodeRecord), 128,
                             /*create=*/false);
    nodes.scan([&](const Octant&, std::span<const std::byte> v) {
      NodeRecord rec;
      std::memcpy(&rec, v.data(), sizeof rec);
      const std::size_t n = static_cast<std::size_t>(rec.id);
      mesh.node_coords[n] = {rec.x, rec.y, rec.z};
      mesh.node_hanging[n] = rec.hanging;
      if (rec.n_masters > 0) {
        Constraint c{};
        c.node = rec.id;
        c.n_masters = rec.n_masters;
        for (int i = 0; i < rec.n_masters; ++i) {
          c.masters[static_cast<std::size_t>(i)] = rec.masters[i];
          c.weights[static_cast<std::size_t>(i)] = rec.weights[i];
        }
        mesh.constraints.push_back(c);
      }
    });
  }
  std::sort(mesh.constraints.begin(), mesh.constraints.end(),
            [](const Constraint& a, const Constraint& b) {
              return a.node < b.node;
            });

  mesh.elem_nodes.reserve(n_elems);
  mesh.elem_size.reserve(n_elems);
  mesh.elem_level.reserve(n_elems);
  mesh.elem_mat.reserve(n_elems);
  {
    octree::EtreeStore elems(path + ".elem", sizeof(ElemRecord), 128,
                             /*create=*/false);
    elems.scan([&](const Octant& o, std::span<const std::byte> v) {
      ElemRecord rec;
      std::memcpy(&rec, v.data(), sizeof rec);
      std::array<NodeId, 8> conn;
      for (int i = 0; i < 8; ++i) conn[static_cast<std::size_t>(i)] = rec.conn[i];
      const ElemId eid = static_cast<ElemId>(mesh.elem_nodes.size());
      mesh.elem_nodes.push_back(conn);
      mesh.elem_size.push_back(rec.size);
      mesh.elem_level.push_back(rec.level);
      vel::Material mat;
      mat.rho = rec.rho;
      mat.lambda = rec.lambda;
      mat.mu = rec.mu;
      mesh.elem_mat.push_back(mat);
      // Boundary faces from octant geometry.
      const std::uint32_t s = o.size();
      if (o.x == 0) mesh.boundary_faces.push_back({eid, BoundarySide::kXMin});
      if (o.x + s == kTicks)
        mesh.boundary_faces.push_back({eid, BoundarySide::kXMax});
      if (o.y == 0) mesh.boundary_faces.push_back({eid, BoundarySide::kYMin});
      if (o.y + s == kTicks)
        mesh.boundary_faces.push_back({eid, BoundarySide::kYMax});
      if (o.z == 0) mesh.boundary_faces.push_back({eid, BoundarySide::kZMin});
      if (o.z + s == kTicks)
        mesh.boundary_faces.push_back({eid, BoundarySide::kZMax});
    });
  }
  if (mesh.n_elements() != n_elems || mesh.n_nodes() != n_nodes) {
    throw std::runtime_error("load_mesh: record counts disagree with meta");
  }
  return mesh;
}

}  // namespace quake::mesh
