#pragma once

// The paper's transform step emits TWO databases — "one for the mesh
// elements, the other for the mesh nodes" (§2.3) — that the solver later
// reads. This module persists a HexMesh into that pair of etree stores and
// loads it back, so meshing and solving can run as separate processes with
// only disk in between (the production workflow: mesh once, simulate many
// rupture scenarios).

#include <string>

#include "quake/mesh/hex_mesh.hpp"

namespace quake::mesh {

struct MeshDbStats {
  std::size_t element_records = 0;
  std::size_t node_records = 0;
};

// Writes `<path>.elem` (per-octant element record: connectivity, size,
// level, material) and `<path>.node` (per-node record: coordinates, hanging
// flag, constraint). Overwrites existing stores.
MeshDbStats save_mesh(const HexMesh& mesh, const std::string& path);

// Reconstructs the mesh from the database pair. The result is functionally
// identical to the saved mesh (same element/node numbering).
HexMesh load_mesh(const std::string& path);

}  // namespace quake::mesh
