#pragma once

// Mesh generation: the three-step etree pipeline of Fig 2.1 —
//   construct : refine an octree until every leaf resolves the local shear
//               wavelength (h <= vs / (n_lambda * f_max));
//   balance   : enforce the 2-to-1 constraint (faces + edges, as required
//               for well-defined hanging-node constraints);
//   transform : derive the element/node databases, hanging constraints,
//               and boundary faces.

#include <string>

#include "quake/mesh/hex_mesh.hpp"
#include "quake/octree/linear_octree.hpp"
#include "quake/vel/model.hpp"

namespace quake::mesh {

struct MeshOptions {
  double domain_size = 0.0;  // cube edge [m]
  double f_max = 1.0;        // highest resolved frequency [Hz]
  double n_lambda = 10.0;    // grid points per shortest wavelength
  int max_level = 10;        // refinement cap
  int min_level = 2;         // refinement floor (keeps a sane coarse mesh)
};

struct MeshStats {
  std::size_t n_elements = 0;
  std::size_t n_nodes = 0;
  std::size_t n_hanging = 0;
  std::size_t n_independent = 0;
  int min_level = 0, max_level = 0;
  // Grid points a uniform mesh at the finest resolved wavelength would need
  // (the paper: "a regular grid code would have required 2e11 grid points,
  // a factor of 2000 greater").
  double uniform_equivalent_points = 0.0;
};

// The wavelength-adaptive refinement predicate used by the construct step;
// exposed separately so tests and the etree bench can drive construction
// directly.
octree::RefinePolicy wavelength_policy(const vel::VelocityModel& model,
                                       const MeshOptions& opt);

// construct + balance: returns the balanced octree (the geometry database).
octree::LinearOctree build_balanced_octree(const vel::VelocityModel& model,
                                           const MeshOptions& opt);

// transform: octree -> finite element mesh.
HexMesh transform(const octree::LinearOctree& tree,
                  const vel::VelocityModel& model, const MeshOptions& opt);

// Full in-core pipeline.
HexMesh generate_mesh(const vel::VelocityModel& model, const MeshOptions& opt);

// Full out-of-core pipeline: the construct step streams octants into an
// EtreeStore at `store_path`, balance reads them back, and the balanced tree
// is re-persisted before transform — exercising the disk-backed path end to
// end (at laptop scale; see DESIGN.md).
HexMesh generate_mesh_out_of_core(const vel::VelocityModel& model,
                                  const MeshOptions& opt,
                                  const std::string& store_path);

MeshStats compute_stats(const HexMesh& mesh, const vel::VelocityModel& model,
                        const MeshOptions& opt);

}  // namespace quake::mesh
