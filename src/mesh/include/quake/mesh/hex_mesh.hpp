#pragma once

// The unstructured multiresolution hexahedral mesh produced by the etree
// transform step (§2.3): elements (octree leaves), globally numbered nodes,
// hanging-node constraints, and boundary faces for the absorbing-boundary
// terms.
//
// Local node ordering is tensor order: local node i sits at offsets
// ((i & 1), (i >> 1) & 1, (i >> 2) & 1) * element_size from the element
// anchor — identical to the Morton child order of the octree.

#include <array>
#include <cstdint>
#include <vector>

#include "quake/vel/material.hpp"

namespace quake::mesh {

using NodeId = std::int32_t;
using ElemId = std::int32_t;

// Domain geometry: the octree root cube spans [0, size]^3 meters, with the
// third coordinate interpreted as depth below the free surface (z = 0).
struct Domain {
  double size = 0.0;  // cube edge length [m]
};

// Which exterior cube face a boundary element-face lies on.
enum class BoundarySide : std::uint8_t {
  kXMin = 0,
  kXMax = 1,
  kYMin = 2,
  kYMax = 3,
  kZMin = 4,  // z = 0: the free surface (traction-free, no matrix terms)
  kZMax = 5,  // bottom
};

struct BoundaryFace {
  ElemId elem;
  BoundarySide side;
};

// Local (tensor-order) node indices of each element face, indexed by
// BoundarySide. The in-face node ordering is bilinear over the two
// tangential axes in increasing-axis order: face node f sits at tangential
// offsets ((f & 1), (f >> 1) & 1).
inline constexpr std::array<std::array<int, 4>, 6> kFaceNodes = {{
    {{0, 2, 4, 6}},  // x = 0
    {{1, 3, 5, 7}},  // x = 1
    {{0, 1, 4, 5}},  // y = 0
    {{2, 3, 6, 7}},  // y = 1
    {{0, 1, 2, 3}},  // z = 0 (free surface)
    {{4, 5, 6, 7}},  // z = 1 (bottom)
}};

// Hanging-node constraint in resolved form: the dependent node's value is a
// weighted average of *independent* nodes (mid-edge: two masters at 1/2;
// mid-face: four masters at 1/4). Chains through multiple levels — a master
// that is itself hanging — are resolved at build time, so stored masters are
// never hanging; resolution can widen the stencil, hence capacity 8.
struct Constraint {
  NodeId node;
  std::array<NodeId, 8> masters;
  std::array<double, 8> weights;
  int n_masters;
};

struct HexMesh {
  Domain domain;

  // -- elements -------------------------------------------------------------
  std::vector<std::array<NodeId, 8>> elem_nodes;
  std::vector<double> elem_size;        // edge length [m]
  std::vector<std::uint8_t> elem_level; // octree level
  std::vector<vel::Material> elem_mat;  // sampled at the centroid

  // -- nodes ------------------------------------------------------------
  std::vector<std::array<double, 3>> node_coords;  // (x, y, depth) [m]
  std::vector<std::uint8_t> node_hanging;          // 1 if constrained

  // -- constraints and boundary -------------------------------------------
  std::vector<Constraint> constraints;
  // Every exterior face, including the free surface (kZMin); the solver
  // applies absorbing terms only to the non-free-surface sides.
  std::vector<BoundaryFace> boundary_faces;

  [[nodiscard]] std::size_t n_elements() const { return elem_nodes.size(); }
  [[nodiscard]] std::size_t n_nodes() const { return node_coords.size(); }
  [[nodiscard]] std::size_t n_hanging() const { return constraints.size(); }
  // Independent (non-hanging) grid points — the solver's true unknowns.
  [[nodiscard]] std::size_t n_independent() const {
    return n_nodes() - n_hanging();
  }
};

}  // namespace quake::mesh
