#pragma once

// quake::svc — the serving layer over the parallel solver (see
// docs/SERVICE.md and docs/BATCHING.md). The paper's cost split is: mesh
// generation and solver setup are expensive, each explicit step is O(N) —
// so the production shape of this workload is MANY forward solves over ONE
// fixed discretization (earthquake-sequence simulation, the GN–CG
// inversion's hundreds of forward/adjoint solves per inversion).
// SimulationService builds the immutable shared state once per worker lane
// (a par::ParallelSetup: ElasticOperator, ghost plans, boundary/interior
// split, exchange buffers, communicator) and serves a stream of
// ScenarioRequests through a sharded, bounded admission queue: one shard
// and one worker per lane, requests routed to the shallowest shard. A lane
// may additionally coalesce up to `max_batch` compatible waiting requests
// into one scenario-batched solve (ParallelSetup::run_batch) so S requests
// share one element sweep and one ghost-exchange round per step — with
// results bitwise identical to running them one at a time.
//
// Isolation semantics: all mutable solver state (displacement vectors,
// receiver histories, telemetry registries, fault-plan cursors) is
// per-request inside ParallelSetup::run. A request that dies — e.g. via an
// injected FaultPlan with retries exhausted — completes exceptionally with
// kFailed and the service keeps serving; the communicator resets itself at
// the start of the next run.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "quake/obs/obs.hpp"
#include "quake/par/parallel_solver.hpp"
#include "quake/solver/source.hpp"

namespace quake::svc {

// Typed load-shedding rejection: thrown by submit() when `queue_bound`
// requests are already waiting. Callers distinguish "try later" from
// programming errors by catching this type.
class QueueFullError : public std::runtime_error {
 public:
  explicit QueueFullError(const std::string& what)
      : std::runtime_error(what) {}
};

// Point source parameters (a Ricker-wavelet force at the nearest node);
// resolved against the service's mesh at execution time.
struct PointSourceSpec {
  std::array<double, 3> position{};
  std::array<double, 3> direction{0.0, 0.0, 1.0};
  double amplitude = 1.0;
  double fp = 1.0;  // Ricker peak frequency [Hz]
  double tc = 1.0;  // Ricker center time [s]
};

// One forward-solve scenario on the service's fixed discretization. The
// time axis (dt) is part of the shared setup; a request chooses only how
// long to integrate, what drives the run, and where to record.
struct ScenarioRequest {
  std::vector<PointSourceSpec> point_sources;
  std::vector<solver::FaultSource::Spec> fault_sources;
  std::vector<std::array<double, 3>> receivers;  // station positions
  double t_end = 1.0;

  double deadline_seconds = 0.0;  // end-to-end budget from admission; 0=none
  int priority = 0;               // higher drains first; FIFO within a level

  // Per-request fault tolerance (checkpointing, retries, injected faults —
  // the FaultPlan pointer must outlive the request). A request whose
  // recovery budget is exhausted fails alone; the service stays up.
  par::FaultToleranceOptions ft;

  // Service-level degradation: when the solve's own revival/restart budget
  // is spent (ParallelSetup::run throws a rank-failure), the worker retries
  // the whole request up to `max_attempts` times total, sleeping
  // `retry_backoff_seconds * 2^(attempt-1)` between attempts. Only
  // recoverable faults are retried — deadlocks and setup errors are
  // deterministic and fail immediately. Each extra attempt bumps
  // `svc/retries` and marks the service degraded until a request completes
  // on its first attempt.
  int max_attempts = 1;
  double retry_backoff_seconds = 0.0;
};

enum class RequestStatus {
  kCompleted,         // ran to t_end
  kCancelled,         // cancel(id) hit it, queued or at a step boundary
  kDeadlineExceeded,  // end-to-end deadline expired, queued or mid-solve
  kFailed,            // the solve threw; see `error`
};

struct ScenarioResult {
  std::uint64_t id = 0;
  RequestStatus status = RequestStatus::kCompleted;
  std::string error;  // set when status == kFailed

  // The full solver result: seismograms (receiver_histories), final field,
  // per-rank stats, and the per-request obs report (obs_reports /
  // obs_summary, populated when obs is enabled). On kCancelled /
  // kDeadlineExceeded this is partial: solve.cancelled is true and
  // histories cover solve.steps_completed steps. Empty on kFailed and on
  // requests cancelled while still queued.
  par::ParallelResult solve;

  std::uint64_t exec_index = 0;  // 1-based worker pickup order; 0 = never ran
  int attempts = 0;              // service-level attempts consumed (>1 = retried)
  double queue_seconds = 0.0;    // admission -> worker pickup
  double solve_seconds = 0.0;    // wall-clock across all attempts
  double total_seconds = 0.0;    // admission -> completion (end-to-end)
};

// Point-in-time health snapshot (see health()): queue pressure, the
// degraded flag, and the recovery footprint of the last executed request —
// what an operator polls to decide whether the service is riding out
// faults or needs intervention.
struct ServiceHealth {
  std::size_t queue_depth = 0;   // waiting requests (in-flight not counted)
  bool in_flight = false;
  // True after a request needed a service-level retry or failed outright;
  // cleared when a request completes on its first attempt.
  bool degraded = false;
  std::int64_t retries_total = 0;  // svc/retries counter
  std::int64_t failed_total = 0;   // svc/requests_failed counter

  // Last executed request's recovery footprint.
  std::uint64_t last_id = 0;          // 0 = nothing executed yet
  int last_attempts = 0;              // service-level attempts it consumed
  int last_revives_used = 0;          // in-place revivals its solve consumed
  int last_revives_budget = 0;        // its ft.max_revives
  int last_revives_remaining = 0;     // budget - used (never negative)
  double last_recoveries = 0.0;       // par/recoveries (obs-enabled runs)
  double last_steps_rolled_back = 0.0;  // par/steps_rolled_back, summed
  double last_steps_replayed = 0.0;     // par/steps_replayed, summed
  // Tier-1 detail: how many victims restored straight from a buddy's
  // donated snapshot, and whether any recovery replayed several
  // simultaneously failed ranks at once.
  double last_donation_restores = 0.0;   // par/donation_restores, summed
  double last_multi_victim_replays = 0.0;  // par/multi_victim_replays
  double last_solve_seconds = 0.0;
};

struct ServiceOptions {
  std::size_t queue_bound = 16;  // waiting requests admitted PER SHARD
                                 // before shedding (each lane has its own
                                 // shard of the admission queue)
  int cancel_check_every = 1;    // steps between cancel/deadline agreements
  bool start_paused = false;     // admit but hold execution until resume()

  // Worker lanes. Each lane owns a full ParallelSetup replica (operator,
  // ghost plans, exchange buffers, communicator) and drains its own shard
  // of the admission queue, so `lanes` solves proceed concurrently.
  // submit() routes each request to the shallowest shard (ties to the
  // lowest lane index).
  int lanes = 1;

  // Scenario batching (see docs/BATCHING.md): a lane picking up a
  // batchable request coalesces up to `max_batch` compatible waiting
  // requests from its shard into one run_batch solve. A request is
  // batchable iff it carries no deadline, no retry budget, and no fault
  // tolerance; batch partners must share t_end. 1 = batching off. Must not
  // exceed fem::kMaxBatchLanes.
  int max_batch = 1;

  // Aggregation window: with max_batch > 1, how long a lane holds an
  // underfull batch open for more coalescible arrivals before solving.
  // 0 = solve immediately with whatever is already waiting.
  double batch_window_seconds = 0.0;
};

class SimulationService {
 public:
  using Options = ServiceOptions;

  // Builds the shared setup (the expensive phase) synchronously and starts
  // the worker. `mesh` and `part` must outlive the service.
  SimulationService(const mesh::HexMesh& mesh, const par::Partition& part,
                    const solver::OperatorOptions& op_opt,
                    const solver::SolverOptions& base, Options opt = {});

  // Shuts down: completes still-queued requests with kCancelled, requests
  // cooperative cancellation of the in-flight solve, joins the worker.
  // Call wait_idle() first to let outstanding work finish instead.
  ~SimulationService();

  SimulationService(const SimulationService&) = delete;
  SimulationService& operator=(const SimulationService&) = delete;

  struct Ticket {
    std::uint64_t id = 0;
    std::future<ScenarioResult> result;
  };

  // Admission: enqueues the request and returns its id + future. Throws
  // QueueFullError when `queue_bound` requests are already waiting (the
  // in-flight request does not count against the bound).
  Ticket submit(ScenarioRequest req);

  // Cooperative cancellation. A queued request completes immediately with
  // kCancelled; a running one stops at its next step-boundary agreement.
  // Returns false when the id is unknown or already finished.
  bool cancel(std::uint64_t id);

  // Deterministic queue control (tests; maintenance windows): pause() holds
  // the worker after the in-flight request, resume() releases it.
  void pause();
  void resume();

  // Blocks until the queue is empty and nothing is in flight. While the
  // service is paused with work queued this waits for resume().
  void wait_idle();

  // Waiting requests summed across every shard (in-flight not counted).
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] int lanes() const { return opt_.lanes; }
  [[nodiscard]] const par::ParallelSetup& setup() const { return setup_; }
  [[nodiscard]] double dt() const { return setup_.dt(); }

  // Point-in-time service metrics snapshot: the svc/requests_* counters,
  // the svc/retries, svc/batches, and svc/batched_requests counters, the
  // svc/queue_depth (all shards summed), svc/lanes, svc/batch_size (width
  // of the last solve launched), and svc/degraded gauges, the per-lane
  // svc/lane<k>/queue_depth gauges and svc/lane<k>/requests|batches|
  // rejected counters, and the svc/latency|queue|solve_seconds series are
  // always live; scope timings (svc/request/setup|solve|extract) accumulate
  // only while quake::obs is enabled. See docs/OBSERVABILITY.md.
  [[nodiscard]] obs::Registry metrics() const;

  // Structured health snapshot: queue depth, degraded flag, and the last
  // executed request's recovery footprint (revival budget consumed and
  // remaining, recoveries, rolled-back/replayed steps).
  [[nodiscard]] ServiceHealth health() const;

 private:
  struct Pending;
  struct Lane;

  void worker_loop(Lane& lane);
  ScenarioResult execute(par::ParallelSetup& setup, Pending& p,
                         std::uint64_t exec_index);
  void execute_batch(Lane& lane, std::vector<std::unique_ptr<Pending>> batch);

  par::ParallelSetup setup_;  // lane 0's setup (the setup() accessor)
  std::vector<std::unique_ptr<par::ParallelSetup>> replica_setups_;  // lanes 1+
  const Options opt_;

  mutable std::mutex mu_;             // guards every shard + running state
  std::condition_variable work_cv_;   // worker wakeups
  std::condition_variable idle_cv_;   // wait_idle wakeups
  std::vector<std::unique_ptr<Lane>> lanes_;
  bool paused_ = false;
  bool shutdown_ = false;

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<std::uint64_t> exec_counter_{0};
  std::atomic<std::int64_t> last_batch_width_{0};  // svc/batch_size gauge

  // Live counters (ISSUE taxonomy); atomics so submit-side rejections are
  // counted without taking the queue lock's contention into metrics().
  std::atomic<std::int64_t> admitted_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<std::int64_t> cancelled_{0};
  std::atomic<std::int64_t> deadline_exceeded_{0};
  std::atomic<std::int64_t> failed_{0};
  std::atomic<std::int64_t> retries_{0};
  std::atomic<std::int64_t> batches_{0};           // width > 1 solves launched
  std::atomic<std::int64_t> batched_requests_{0};  // requests they carried

  // Degradation state + last executed request's recovery footprint, written
  // by the worker after each request, read by health()/metrics().
  mutable std::mutex health_mu_;
  bool degraded_ = false;
  ServiceHealth last_exec_;

  // Per-request scope/series telemetry, merged from the worker's request-
  // local registry after each request (so metrics() never races the
  // recording thread).
  mutable std::mutex agg_mu_;
  obs::Registry agg_;

  std::thread worker_;
};

}  // namespace quake::svc
