#pragma once

// quake::svc — the serving layer over the parallel solver (see
// docs/SERVICE.md). The paper's cost split is: mesh generation and solver
// setup are expensive, each explicit step is O(N) — so the production shape
// of this workload is MANY forward solves over ONE fixed discretization
// (earthquake-sequence simulation, the GN–CG inversion's hundreds of
// forward/adjoint solves per inversion). SimulationService builds the
// immutable shared state once (a par::ParallelSetup: ElasticOperator, ghost
// plans, boundary/interior split, exchange buffers, communicator) and then
// serves a stream of ScenarioRequests through a bounded priority queue with
// a single worker, so every request pays only the O(N)-per-step solve.
//
// Isolation semantics: all mutable solver state (displacement vectors,
// receiver histories, telemetry registries, fault-plan cursors) is
// per-request inside ParallelSetup::run. A request that dies — e.g. via an
// injected FaultPlan with retries exhausted — completes exceptionally with
// kFailed and the service keeps serving; the communicator resets itself at
// the start of the next run.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "quake/obs/obs.hpp"
#include "quake/par/parallel_solver.hpp"
#include "quake/solver/source.hpp"

namespace quake::svc {

// Typed load-shedding rejection: thrown by submit() when `queue_bound`
// requests are already waiting. Callers distinguish "try later" from
// programming errors by catching this type.
class QueueFullError : public std::runtime_error {
 public:
  explicit QueueFullError(const std::string& what)
      : std::runtime_error(what) {}
};

// Point source parameters (a Ricker-wavelet force at the nearest node);
// resolved against the service's mesh at execution time.
struct PointSourceSpec {
  std::array<double, 3> position{};
  std::array<double, 3> direction{0.0, 0.0, 1.0};
  double amplitude = 1.0;
  double fp = 1.0;  // Ricker peak frequency [Hz]
  double tc = 1.0;  // Ricker center time [s]
};

// One forward-solve scenario on the service's fixed discretization. The
// time axis (dt) is part of the shared setup; a request chooses only how
// long to integrate, what drives the run, and where to record.
struct ScenarioRequest {
  std::vector<PointSourceSpec> point_sources;
  std::vector<solver::FaultSource::Spec> fault_sources;
  std::vector<std::array<double, 3>> receivers;  // station positions
  double t_end = 1.0;

  double deadline_seconds = 0.0;  // end-to-end budget from admission; 0=none
  int priority = 0;               // higher drains first; FIFO within a level

  // Per-request fault tolerance (checkpointing, retries, injected faults —
  // the FaultPlan pointer must outlive the request). A request whose
  // recovery budget is exhausted fails alone; the service stays up.
  par::FaultToleranceOptions ft;

  // Service-level degradation: when the solve's own revival/restart budget
  // is spent (ParallelSetup::run throws a rank-failure), the worker retries
  // the whole request up to `max_attempts` times total, sleeping
  // `retry_backoff_seconds * 2^(attempt-1)` between attempts. Only
  // recoverable faults are retried — deadlocks and setup errors are
  // deterministic and fail immediately. Each extra attempt bumps
  // `svc/retries` and marks the service degraded until a request completes
  // on its first attempt.
  int max_attempts = 1;
  double retry_backoff_seconds = 0.0;
};

enum class RequestStatus {
  kCompleted,         // ran to t_end
  kCancelled,         // cancel(id) hit it, queued or at a step boundary
  kDeadlineExceeded,  // end-to-end deadline expired, queued or mid-solve
  kFailed,            // the solve threw; see `error`
};

struct ScenarioResult {
  std::uint64_t id = 0;
  RequestStatus status = RequestStatus::kCompleted;
  std::string error;  // set when status == kFailed

  // The full solver result: seismograms (receiver_histories), final field,
  // per-rank stats, and the per-request obs report (obs_reports /
  // obs_summary, populated when obs is enabled). On kCancelled /
  // kDeadlineExceeded this is partial: solve.cancelled is true and
  // histories cover solve.steps_completed steps. Empty on kFailed and on
  // requests cancelled while still queued.
  par::ParallelResult solve;

  std::uint64_t exec_index = 0;  // 1-based worker pickup order; 0 = never ran
  int attempts = 0;              // service-level attempts consumed (>1 = retried)
  double queue_seconds = 0.0;    // admission -> worker pickup
  double solve_seconds = 0.0;    // wall-clock across all attempts
  double total_seconds = 0.0;    // admission -> completion (end-to-end)
};

// Point-in-time health snapshot (see health()): queue pressure, the
// degraded flag, and the recovery footprint of the last executed request —
// what an operator polls to decide whether the service is riding out
// faults or needs intervention.
struct ServiceHealth {
  std::size_t queue_depth = 0;   // waiting requests (in-flight not counted)
  bool in_flight = false;
  // True after a request needed a service-level retry or failed outright;
  // cleared when a request completes on its first attempt.
  bool degraded = false;
  std::int64_t retries_total = 0;  // svc/retries counter
  std::int64_t failed_total = 0;   // svc/requests_failed counter

  // Last executed request's recovery footprint.
  std::uint64_t last_id = 0;          // 0 = nothing executed yet
  int last_attempts = 0;              // service-level attempts it consumed
  int last_revives_used = 0;          // in-place revivals its solve consumed
  int last_revives_budget = 0;        // its ft.max_revives
  int last_revives_remaining = 0;     // budget - used (never negative)
  double last_recoveries = 0.0;       // par/recoveries (obs-enabled runs)
  double last_steps_rolled_back = 0.0;  // par/steps_rolled_back, summed
  double last_steps_replayed = 0.0;     // par/steps_replayed, summed
  double last_solve_seconds = 0.0;
};

struct ServiceOptions {
  std::size_t queue_bound = 16;  // waiting requests admitted before shedding
  int cancel_check_every = 1;    // steps between cancel/deadline agreements
  bool start_paused = false;     // admit but hold execution until resume()
};

class SimulationService {
 public:
  using Options = ServiceOptions;

  // Builds the shared setup (the expensive phase) synchronously and starts
  // the worker. `mesh` and `part` must outlive the service.
  SimulationService(const mesh::HexMesh& mesh, const par::Partition& part,
                    const solver::OperatorOptions& op_opt,
                    const solver::SolverOptions& base, Options opt = {});

  // Shuts down: completes still-queued requests with kCancelled, requests
  // cooperative cancellation of the in-flight solve, joins the worker.
  // Call wait_idle() first to let outstanding work finish instead.
  ~SimulationService();

  SimulationService(const SimulationService&) = delete;
  SimulationService& operator=(const SimulationService&) = delete;

  struct Ticket {
    std::uint64_t id = 0;
    std::future<ScenarioResult> result;
  };

  // Admission: enqueues the request and returns its id + future. Throws
  // QueueFullError when `queue_bound` requests are already waiting (the
  // in-flight request does not count against the bound).
  Ticket submit(ScenarioRequest req);

  // Cooperative cancellation. A queued request completes immediately with
  // kCancelled; a running one stops at its next step-boundary agreement.
  // Returns false when the id is unknown or already finished.
  bool cancel(std::uint64_t id);

  // Deterministic queue control (tests; maintenance windows): pause() holds
  // the worker after the in-flight request, resume() releases it.
  void pause();
  void resume();

  // Blocks until the queue is empty and nothing is in flight. While the
  // service is paused with work queued this waits for resume().
  void wait_idle();

  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] const par::ParallelSetup& setup() const { return setup_; }
  [[nodiscard]] double dt() const { return setup_.dt(); }

  // Point-in-time service metrics snapshot: the svc/requests_* counters,
  // the svc/retries counter, the svc/queue_depth and svc/degraded gauges,
  // and the svc/latency|queue|solve_seconds series are always live; scope
  // timings (svc/request/setup|solve|extract) accumulate only while
  // quake::obs is enabled.
  [[nodiscard]] obs::Registry metrics() const;

  // Structured health snapshot: queue depth, degraded flag, and the last
  // executed request's recovery footprint (revival budget consumed and
  // remaining, recoveries, rolled-back/replayed steps).
  [[nodiscard]] ServiceHealth health() const;

 private:
  struct Pending;

  void worker_loop();
  ScenarioResult execute(Pending& p, std::uint64_t exec_index);
  std::deque<std::unique_ptr<Pending>>::iterator pick_next_locked();

  par::ParallelSetup setup_;
  const Options opt_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // worker wakeups
  std::condition_variable idle_cv_;   // wait_idle wakeups
  std::deque<std::unique_ptr<Pending>> queue_;
  bool paused_ = false;
  bool shutdown_ = false;
  std::uint64_t running_id_ = 0;  // 0 = nothing in flight
  std::shared_ptr<std::atomic<bool>> running_cancel_;

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<std::uint64_t> exec_counter_{0};

  // Live counters (ISSUE taxonomy); atomics so submit-side rejections are
  // counted without taking the queue lock's contention into metrics().
  std::atomic<std::int64_t> admitted_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<std::int64_t> cancelled_{0};
  std::atomic<std::int64_t> deadline_exceeded_{0};
  std::atomic<std::int64_t> failed_{0};
  std::atomic<std::int64_t> retries_{0};

  // Degradation state + last executed request's recovery footprint, written
  // by the worker after each request, read by health()/metrics().
  mutable std::mutex health_mu_;
  bool degraded_ = false;
  ServiceHealth last_exec_;

  // Per-request scope/series telemetry, merged from the worker's request-
  // local registry after each request (so metrics() never races the
  // recording thread).
  mutable std::mutex agg_mu_;
  obs::Registry agg_;

  std::thread worker_;
};

}  // namespace quake::svc
