#include "quake/svc/simulation_service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "quake/fem/hex_element.hpp"
#include "quake/par/communicator.hpp"

namespace quake::svc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Across-rank sum of a merged counter; 0 when the key is absent (obs
// disabled, or the solve never touched it).
double counter_sum(const obs::MergedReport& m, const std::string& key) {
  const auto it = m.counters.find(key);
  return it == m.counters.end() ? 0.0 : it->second.sum;
}

// A request may join a scenario batch only when nothing about it needs the
// per-request machinery the batched path does not carry: no end-to-end
// deadline (the whole batch would inherit the tightest one), no
// service-level retry budget, and no fault tolerance of any kind
// (run_batch deliberately supports none — see docs/BATCHING.md for the
// coalescing contract). Batch partners must additionally share t_end.
bool batchable(const ScenarioRequest& r) {
  return r.deadline_seconds == 0.0 && r.max_attempts <= 1 &&
         r.ft.checkpoint_dir.empty() && r.ft.fault_plan == nullptr &&
         r.ft.max_retries == 0 && r.ft.max_revives == 0;
}

}  // namespace

struct SimulationService::Pending {
  std::uint64_t id = 0;
  int priority = 0;
  std::uint64_t seq = 0;  // admission order; FIFO tiebreak within a priority
  ScenarioRequest req;
  Clock::time_point admitted;
  std::promise<ScenarioResult> promise;
  std::shared_ptr<std::atomic<bool>> cancel_flag;
};

// One worker lane: a ParallelSetup replica, its shard of the admission
// queue, and what it is currently running. `queue` and the running_* state
// are guarded by the service-wide mu_; the counters are atomics so
// metrics() reads them without blocking admission.
struct SimulationService::Lane {
  int index = 0;
  par::ParallelSetup* setup = nullptr;
  std::deque<std::unique_ptr<Pending>> queue;

  // In-flight request ids and their per-request cancel flags (parallel
  // vectors; empty = idle). For a batch, batch_cancel is a separate flag
  // that fires only when EVERY member has been cancelled — the batch
  // advances in lockstep, so stopping it early on one member's cancel
  // would kill its partners' solves too. For a single run, batch_cancel
  // aliases the member's own flag.
  std::vector<std::uint64_t> running_ids;
  std::vector<std::shared_ptr<std::atomic<bool>>> running_flags;
  std::shared_ptr<std::atomic<bool>> running_batch_cancel;

  std::atomic<std::int64_t> requests{0};  // requests this lane picked up
  std::atomic<std::int64_t> batches{0};   // width > 1 solves it launched
  std::atomic<std::int64_t> rejected{0};  // shed at admission to this shard

  std::thread worker;
};

SimulationService::SimulationService(const mesh::HexMesh& mesh,
                                     const par::Partition& part,
                                     const solver::OperatorOptions& op_opt,
                                     const solver::SolverOptions& base,
                                     Options opt)
    : setup_(mesh, part, op_opt, base), opt_(opt) {
  if (opt_.lanes < 1) {
    throw std::invalid_argument("SimulationService: lanes must be >= 1");
  }
  if (opt_.max_batch < 1 || opt_.max_batch > fem::kMaxBatchLanes) {
    throw std::invalid_argument(
        "SimulationService: max_batch must be in [1, " +
        std::to_string(fem::kMaxBatchLanes) + "]");
  }
  paused_ = opt_.start_paused;
  replica_setups_.reserve(static_cast<std::size_t>(opt_.lanes - 1));
  for (int k = 1; k < opt_.lanes; ++k) {
    replica_setups_.push_back(
        std::make_unique<par::ParallelSetup>(mesh, part, op_opt, base));
  }
  lanes_.reserve(static_cast<std::size_t>(opt_.lanes));
  for (int k = 0; k < opt_.lanes; ++k) {
    auto lane = std::make_unique<Lane>();
    lane->index = k;
    lane->setup =
        k == 0 ? &setup_ : replica_setups_[static_cast<std::size_t>(k - 1)].get();
    lanes_.push_back(std::move(lane));
  }
  for (auto& lane : lanes_) {
    Lane* l = lane.get();
    l->worker = std::thread([this, l] { worker_loop(*l); });
  }
}

SimulationService::~SimulationService() {
  std::deque<std::unique_ptr<Pending>> orphans;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
    for (auto& lane : lanes_) {
      for (auto& p : lane->queue) orphans.push_back(std::move(p));
      lane->queue.clear();
      // Cancel whatever is in flight: every member flag, then the
      // whole-batch flag (the all-members-cancelled invariant holds).
      for (auto& f : lane->running_flags) {
        f->store(true, std::memory_order_relaxed);
      }
      if (lane->running_batch_cancel) {
        lane->running_batch_cancel->store(true, std::memory_order_relaxed);
      }
    }
  }
  work_cv_.notify_all();
  for (auto& p : orphans) {
    ScenarioResult r;
    r.id = p->id;
    r.status = RequestStatus::kCancelled;
    r.total_seconds = seconds_between(p->admitted, Clock::now());
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    p->promise.set_value(std::move(r));
  }
  for (auto& lane : lanes_) {
    if (lane->worker.joinable()) lane->worker.join();
  }
}

SimulationService::Ticket SimulationService::submit(ScenarioRequest req) {
  auto p = std::make_unique<Pending>();
  p->req = std::move(req);
  p->priority = p->req.priority;
  p->cancel_flag = std::make_shared<std::atomic<bool>>(false);
  std::future<ScenarioResult> fut = p->promise.get_future();
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_) {
      throw std::runtime_error("SimulationService: submit after shutdown");
    }
    // Route to the shallowest shard, ties to the lowest lane index. The
    // bound is per shard; because routing picks the minimum, admission only
    // sheds when every shard is full.
    Lane* shard = lanes_.front().get();
    for (auto& lane : lanes_) {
      if (lane->queue.size() < shard->queue.size()) shard = lane.get();
    }
    if (shard->queue.size() >= opt_.queue_bound) {
      shard->rejected.fetch_add(1, std::memory_order_relaxed);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      throw QueueFullError("SimulationService: admission queue full (" +
                           std::to_string(opt_.queue_bound) +
                           " requests waiting on shard " +
                           std::to_string(shard->index) + ")");
    }
    id = next_id_.fetch_add(1, std::memory_order_relaxed);
    p->id = id;
    p->seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    p->admitted = Clock::now();
    admitted_.fetch_add(1, std::memory_order_relaxed);
    shard->queue.push_back(std::move(p));
  }
  work_cv_.notify_all();
  return Ticket{id, std::move(fut)};
}

bool SimulationService::cancel(std::uint64_t id) {
  std::unique_ptr<Pending> victim;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    for (auto& lane : lanes_) {
      // In flight on this lane: flip the member's cooperative flag. A solo
      // run stops at its next step-boundary agreement (batch_cancel aliases
      // the member flag); a batch stops early only once every member has
      // been cancelled.
      for (std::size_t i = 0; i < lane->running_ids.size(); ++i) {
        if (lane->running_ids[i] != id) continue;
        lane->running_flags[i]->store(true, std::memory_order_relaxed);
        bool all = true;
        for (const auto& f : lane->running_flags) {
          if (!f->load(std::memory_order_relaxed)) {
            all = false;
            break;
          }
        }
        if (all && lane->running_batch_cancel) {
          lane->running_batch_cancel->store(true, std::memory_order_relaxed);
        }
        return true;
      }
      const auto it = std::find_if(
          lane->queue.begin(), lane->queue.end(),
          [id](const std::unique_ptr<Pending>& p) { return p->id == id; });
      if (it != lane->queue.end()) {
        victim = std::move(*it);
        lane->queue.erase(it);
        break;
      }
    }
    if (!victim) return false;
  }
  ScenarioResult r;
  r.id = id;
  r.status = RequestStatus::kCancelled;
  r.total_seconds = seconds_between(victim->admitted, Clock::now());
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  victim->promise.set_value(std::move(r));
  idle_cv_.notify_all();
  return true;
}

void SimulationService::pause() {
  const std::lock_guard<std::mutex> lk(mu_);
  paused_ = true;
}

void SimulationService::resume() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void SimulationService::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] {
    for (const auto& lane : lanes_) {
      if (!lane->queue.empty() || !lane->running_ids.empty()) return false;
    }
    return true;
  });
}

std::size_t SimulationService::queue_depth() const {
  const std::lock_guard<std::mutex> lk(mu_);
  std::size_t depth = 0;
  for (const auto& lane : lanes_) depth += lane->queue.size();
  return depth;
}

obs::Registry SimulationService::metrics() const {
  obs::Registry m;
  {
    const std::lock_guard<std::mutex> lk(agg_mu_);
    m = agg_;
  }
  m.counters["svc/requests_admitted"] =
      admitted_.load(std::memory_order_relaxed);
  m.counters["svc/requests_completed"] =
      completed_.load(std::memory_order_relaxed);
  m.counters["svc/requests_rejected"] =
      rejected_.load(std::memory_order_relaxed);
  m.counters["svc/requests_cancelled"] =
      cancelled_.load(std::memory_order_relaxed);
  m.counters["svc/requests_deadline_exceeded"] =
      deadline_exceeded_.load(std::memory_order_relaxed);
  m.counters["svc/requests_failed"] = failed_.load(std::memory_order_relaxed);
  m.counters["svc/retries"] = retries_.load(std::memory_order_relaxed);
  m.counters["svc/batches"] = batches_.load(std::memory_order_relaxed);
  m.counters["svc/batched_requests"] =
      batched_requests_.load(std::memory_order_relaxed);
  m.gauges["svc/lanes"] = static_cast<double>(opt_.lanes);
  m.gauges["svc/batch_size"] =
      static_cast<double>(last_batch_width_.load(std::memory_order_relaxed));
  {
    const std::lock_guard<std::mutex> lk(mu_);
    std::size_t depth = 0;
    for (const auto& lane : lanes_) {
      const std::string prefix = "svc/lane" + std::to_string(lane->index);
      m.gauges[prefix + "/queue_depth"] =
          static_cast<double>(lane->queue.size());
      m.counters[prefix + "/requests"] =
          lane->requests.load(std::memory_order_relaxed);
      m.counters[prefix + "/batches"] =
          lane->batches.load(std::memory_order_relaxed);
      m.counters[prefix + "/rejected"] =
          lane->rejected.load(std::memory_order_relaxed);
      depth += lane->queue.size();
    }
    m.gauges["svc/queue_depth"] = static_cast<double>(depth);
  }
  {
    const std::lock_guard<std::mutex> lk(health_mu_);
    m.gauges["svc/degraded"] = degraded_ ? 1.0 : 0.0;
  }
  return m;
}

ServiceHealth SimulationService::health() const {
  ServiceHealth h;
  {
    const std::lock_guard<std::mutex> lk(health_mu_);
    h = last_exec_;
    h.degraded = degraded_;
  }
  {
    const std::lock_guard<std::mutex> lk(mu_);
    h.queue_depth = 0;
    h.in_flight = false;
    for (const auto& lane : lanes_) {
      h.queue_depth += lane->queue.size();
      if (!lane->running_ids.empty()) h.in_flight = true;
    }
  }
  h.retries_total = retries_.load(std::memory_order_relaxed);
  h.failed_total = failed_.load(std::memory_order_relaxed);
  return h;
}

void SimulationService::worker_loop(Lane& lane) {
  for (;;) {
    std::vector<std::unique_ptr<Pending>> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(
          lk, [&] { return shutdown_ || (!paused_ && !lane.queue.empty()); });
      if (shutdown_) return;
      // Priority order within the shard: higher priority first, FIFO
      // within a level (admission seq as the tiebreak).
      const auto pick_best = [](std::deque<std::unique_ptr<Pending>>& q) {
        auto best = q.begin();
        for (auto qi = q.begin(); qi != q.end(); ++qi) {
          if ((*qi)->priority > (*best)->priority ||
              ((*qi)->priority == (*best)->priority &&
               (*qi)->seq < (*best)->seq)) {
            best = qi;
          }
        }
        return best;
      };
      auto it = pick_best(lane.queue);
      std::unique_ptr<Pending> head = std::move(*it);
      lane.queue.erase(it);
      const bool can_batch = opt_.max_batch > 1 && batchable(head->req);
      const double head_t_end = head->req.t_end;
      // The head is in flight from this point — registering it before any
      // aggregation wait keeps cancel() able to reach it.
      lane.running_ids = {head->id};
      lane.running_flags = {head->cancel_flag};
      lane.running_batch_cancel = head->cancel_flag;
      batch.push_back(std::move(head));

      if (can_batch) {
        const auto gather = [&] {
          while (batch.size() < static_cast<std::size_t>(opt_.max_batch)) {
            auto best = lane.queue.end();
            for (auto qi = lane.queue.begin(); qi != lane.queue.end(); ++qi) {
              if (!batchable((*qi)->req) || (*qi)->req.t_end != head_t_end) {
                continue;
              }
              if (best == lane.queue.end() ||
                  (*qi)->priority > (*best)->priority ||
                  ((*qi)->priority == (*best)->priority &&
                   (*qi)->seq < (*best)->seq)) {
                best = qi;
              }
            }
            if (best == lane.queue.end()) break;
            lane.running_ids.push_back((*best)->id);
            lane.running_flags.push_back((*best)->cancel_flag);
            batch.push_back(std::move(*best));
            lane.queue.erase(best);
          }
        };
        gather();
        if (batch.size() < static_cast<std::size_t>(opt_.max_batch) &&
            opt_.batch_window_seconds > 0.0) {
          // Hold the underfull batch open for late arrivals. Spurious and
          // submit() wakeups re-gather; the window closes on time or when
          // the batch fills.
          const auto window_end =
              Clock::now() +
              std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(opt_.batch_window_seconds));
          while (batch.size() < static_cast<std::size_t>(opt_.max_batch) &&
                 !shutdown_) {
            if (work_cv_.wait_until(lk, window_end) ==
                std::cv_status::timeout) {
              gather();
              break;
            }
            gather();
          }
        }
        if (batch.size() > 1) {
          // The whole-batch flag: a fresh atomic that fires only when every
          // member is cancelled. Members flagged during the window count.
          auto bc = std::make_shared<std::atomic<bool>>(false);
          bool all = true;
          for (const auto& f : lane.running_flags) {
            if (!f->load(std::memory_order_relaxed)) {
              all = false;
              break;
            }
          }
          if (all || shutdown_) bc->store(true, std::memory_order_relaxed);
          lane.running_batch_cancel = bc;
        }
      }
    }

    if (batch.size() == 1) {
      std::unique_ptr<Pending> p = std::move(batch.front());
      batch.clear();
      const std::uint64_t exec_index =
          exec_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
      lane.requests.fetch_add(1, std::memory_order_relaxed);
      last_batch_width_.store(1, std::memory_order_relaxed);
      ScenarioResult res = execute(*lane.setup, *p, exec_index);
      switch (res.status) {
        case RequestStatus::kCompleted:
          completed_.fetch_add(1, std::memory_order_relaxed);
          break;
        case RequestStatus::kCancelled:
          cancelled_.fetch_add(1, std::memory_order_relaxed);
          break;
        case RequestStatus::kDeadlineExceeded:
          deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
          break;
        case RequestStatus::kFailed:
          failed_.fetch_add(1, std::memory_order_relaxed);
          break;
      }
      p->promise.set_value(std::move(res));
    } else {
      execute_batch(lane, std::move(batch));
    }

    {
      const std::lock_guard<std::mutex> lk(mu_);
      lane.running_ids.clear();
      lane.running_flags.clear();
      lane.running_batch_cancel.reset();
    }
    idle_cv_.notify_all();
  }
}

ScenarioResult SimulationService::execute(par::ParallelSetup& setup,
                                          Pending& p,
                                          std::uint64_t exec_index) {
  ScenarioResult res;
  res.id = p.id;
  res.exec_index = exec_index;
  const Clock::time_point picked = Clock::now();
  res.queue_seconds = seconds_between(p.admitted, picked);

  // All request-scoped telemetry lands in a registry local to this request,
  // merged into the service aggregate afterwards — metrics() never reads a
  // registry a thread is still writing.
  obs::Registry req_reg;
  {
    const obs::ScopedRegistry install(req_reg);
    QUAKE_OBS_SCOPE("svc/request");

    // An end-to-end deadline covers queueing: what is left of the budget
    // after the wait is what the solve gets.
    double remaining_budget = 0.0;
    bool run_it = true;
    if (p.req.deadline_seconds > 0.0) {
      remaining_budget = p.req.deadline_seconds - res.queue_seconds;
      if (remaining_budget <= 0.0) {
        res.status = RequestStatus::kDeadlineExceeded;
        run_it = false;
      }
    }
    if (run_it && p.cancel_flag->load(std::memory_order_relaxed)) {
      res.status = RequestStatus::kCancelled;
      run_it = false;
    }

    if (run_it) {
      // Materialize the request's sources against the service's mesh; this
      // (plus receiver snapping inside the solve) is all the per-request
      // setup there is — the expensive state is shared.
      std::vector<std::unique_ptr<solver::SourceModel>> sources;
      {
        QUAKE_OBS_SCOPE("setup");
        sources.reserve(p.req.point_sources.size() +
                        p.req.fault_sources.size());
        for (const PointSourceSpec& s : p.req.point_sources) {
          sources.push_back(std::make_unique<solver::PointSource>(
              setup.mesh(), s.position, s.direction, s.amplitude, s.fp,
              s.tc));
        }
        for (const solver::FaultSource::Spec& s : p.req.fault_sources) {
          sources.push_back(
              std::make_unique<solver::FaultSource>(setup.mesh(), s));
        }
      }
      std::vector<const solver::SourceModel*> src_ptrs;
      src_ptrs.reserve(sources.size());
      for (const auto& s : sources) src_ptrs.push_back(s.get());

      par::RunControl ctl;
      ctl.cancel = p.cancel_flag.get();
      ctl.deadline_seconds = remaining_budget;
      ctl.check_every = opt_.cancel_check_every;

      const Clock::time_point t0 = Clock::now();
      // Service-level degradation: when the solve's own revival/restart
      // budget is spent (a rank-failure escapes ParallelSetup::run), retry
      // the whole request up to req.max_attempts times with exponential
      // backoff. Only recoverable faults are retried; deadlocks and setup
      // errors are deterministic and fail immediately. The run leaves the
      // shared setup reusable after a failure, so a retry starts clean.
      const int max_attempts = std::max(1, p.req.max_attempts);
      for (;;) {
        ++res.attempts;
        try {
          QUAKE_OBS_SCOPE("solve");
          res.solve = setup.run(p.req.t_end, src_ptrs, p.req.receivers,
                                p.req.ft, ctl);
          break;
        } catch (const par::DeadlockError& e) {
          res.status = RequestStatus::kFailed;
          res.error = e.what();
          break;
        } catch (const par::RankFailedError& e) {
          res.status = RequestStatus::kFailed;
          res.error = e.what();
          if (res.attempts >= max_attempts) break;
          if (p.cancel_flag->load(std::memory_order_relaxed)) break;
          if (p.req.deadline_seconds > 0.0 &&
              seconds_between(p.admitted, Clock::now()) >=
                  p.req.deadline_seconds) {
            break;  // the end-to-end budget is gone; a retry cannot finish
          }
          retries_.fetch_add(1, std::memory_order_relaxed);
          if (p.req.retry_backoff_seconds > 0.0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                p.req.retry_backoff_seconds *
                std::ldexp(1.0, res.attempts - 1)));
          }
          res.status = RequestStatus::kCompleted;  // reset for the retry
          res.error.clear();
        } catch (const std::exception& e) {
          // Request-level failure (bad receiver, unusable checkpoint, ...):
          // this request fails, the service — and the shared setup — keep
          // serving.
          res.status = RequestStatus::kFailed;
          res.error = e.what();
          break;
        }
      }
      res.solve_seconds = seconds_between(t0, Clock::now());

      {
        QUAKE_OBS_SCOPE("extract");
        if (res.status != RequestStatus::kFailed && res.solve.cancelled) {
          // Both stop conditions funnel through the same step-boundary
          // agreement; the cancel flag tells them apart.
          res.status = p.cancel_flag->load(std::memory_order_relaxed)
                           ? RequestStatus::kCancelled
                           : RequestStatus::kDeadlineExceeded;
        }
      }
    }
    res.total_seconds = seconds_between(p.admitted, Clock::now());
  }

  if (res.attempts > 0) {
    // Health bookkeeping for requests that actually ran: the service is
    // degraded while requests need service-level retries (or fail), and
    // recovers as soon as one completes on its first attempt.
    const std::lock_guard<std::mutex> lk(health_mu_);
    degraded_ = res.attempts > 1 || res.status == RequestStatus::kFailed;
    last_exec_.last_id = res.id;
    last_exec_.last_attempts = res.attempts;
    last_exec_.last_revives_used = res.solve.revives_used;
    last_exec_.last_revives_budget = p.req.ft.max_revives;
    last_exec_.last_revives_remaining =
        std::max(0, p.req.ft.max_revives - res.solve.revives_used);
    last_exec_.last_recoveries =
        counter_sum(res.solve.obs_summary, "par/recoveries");
    last_exec_.last_steps_rolled_back =
        counter_sum(res.solve.obs_summary, "par/steps_rolled_back");
    last_exec_.last_steps_replayed =
        counter_sum(res.solve.obs_summary, "par/steps_replayed");
    last_exec_.last_donation_restores =
        counter_sum(res.solve.obs_summary, "par/donation_restores");
    last_exec_.last_multi_victim_replays =
        counter_sum(res.solve.obs_summary, "par/multi_victim_replays");
    last_exec_.last_solve_seconds = res.solve_seconds;
  }

  {
    const std::lock_guard<std::mutex> lk(agg_mu_);
    agg_.merge_from(req_reg);
    agg_.series["svc/latency_seconds"].push_back(res.total_seconds);
    agg_.series["svc/queue_seconds"].push_back(res.queue_seconds);
    agg_.series["svc/solve_seconds"].push_back(res.solve_seconds);
  }
  return res;
}

// One coalesced solve for `batch.size()` requests. Members advance through
// ParallelSetup::run_batch in lockstep; each member's result is bitwise
// identical to what a solo run would have produced (docs/BATCHING.md). All
// members are batchable by construction: no deadlines, no retries, no FT.
void SimulationService::execute_batch(Lane& lane,
                                      std::vector<std::unique_ptr<Pending>> batch) {
  const std::size_t B = batch.size();
  const std::uint64_t exec_base =
      exec_counter_.fetch_add(B, std::memory_order_relaxed) + 1;
  lane.requests.fetch_add(static_cast<std::int64_t>(B),
                          std::memory_order_relaxed);
  lane.batches.fetch_add(1, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(static_cast<std::int64_t>(B),
                              std::memory_order_relaxed);
  last_batch_width_.store(static_cast<std::int64_t>(B),
                          std::memory_order_relaxed);

  const Clock::time_point picked = Clock::now();
  std::vector<ScenarioResult> results(B);
  for (std::size_t i = 0; i < B; ++i) {
    results[i].id = batch[i]->id;
    results[i].exec_index = exec_base + i;  // consecutive pickup order
    results[i].queue_seconds = seconds_between(batch[i]->admitted, picked);
  }

  obs::Registry req_reg;
  {
    const obs::ScopedRegistry install(req_reg);
    QUAKE_OBS_SCOPE("svc/request");

    bool all_cancelled = true;
    for (const auto& p : batch) {
      if (!p->cancel_flag->load(std::memory_order_relaxed)) {
        all_cancelled = false;
        break;
      }
    }
    if (all_cancelled) {
      for (auto& r : results) r.status = RequestStatus::kCancelled;
    } else {
      // Materialize every member's sources; each becomes one scenario lane.
      std::vector<std::vector<std::unique_ptr<solver::SourceModel>>> owned(B);
      std::vector<par::BatchScenario> scenarios(B);
      {
        QUAKE_OBS_SCOPE("setup");
        for (std::size_t i = 0; i < B; ++i) {
          const ScenarioRequest& req = batch[i]->req;
          owned[i].reserve(req.point_sources.size() +
                           req.fault_sources.size());
          for (const PointSourceSpec& s : req.point_sources) {
            owned[i].push_back(std::make_unique<solver::PointSource>(
                lane.setup->mesh(), s.position, s.direction, s.amplitude,
                s.fp, s.tc));
          }
          for (const solver::FaultSource::Spec& s : req.fault_sources) {
            owned[i].push_back(
                std::make_unique<solver::FaultSource>(lane.setup->mesh(), s));
          }
          scenarios[i].sources.reserve(owned[i].size());
          for (const auto& s : owned[i]) {
            scenarios[i].sources.push_back(s.get());
          }
          scenarios[i].receivers = req.receivers;
        }
      }

      par::RunControl ctl;
      ctl.cancel = lane.running_batch_cancel.get();
      ctl.check_every = opt_.cancel_check_every;

      const Clock::time_point t0 = Clock::now();
      try {
        QUAKE_OBS_SCOPE("solve");
        std::vector<par::ParallelResult> solves =
            lane.setup->run_batch(batch.front()->req.t_end, scenarios, ctl);
        for (std::size_t i = 0; i < B; ++i) {
          // The batch stops early only when every member was cancelled; a
          // member flagged after the solve finished completes normally,
          // mirroring the solo cancel race.
          results[i].status = solves[i].cancelled ? RequestStatus::kCancelled
                                                  : RequestStatus::kCompleted;
          results[i].solve = std::move(solves[i]);
        }
      } catch (const std::exception& e) {
        // One failure fails the whole batch: the members shared one solve.
        for (auto& r : results) {
          r.status = RequestStatus::kFailed;
          r.error = e.what();
        }
      }
      const double solve_s = seconds_between(t0, Clock::now());
      for (std::size_t i = 0; i < B; ++i) {
        results[i].attempts = 1;
        results[i].solve_seconds = solve_s;
      }
    }
    const Clock::time_point done = Clock::now();
    for (std::size_t i = 0; i < B; ++i) {
      results[i].total_seconds = seconds_between(batch[i]->admitted, done);
    }
  }

  {
    // Health bookkeeping: batched runs carry no FT, so the recovery
    // footprint is empty; the head member stands for the batch.
    const std::lock_guard<std::mutex> lk(health_mu_);
    degraded_ = results.front().status == RequestStatus::kFailed;
    last_exec_ = ServiceHealth{};
    last_exec_.last_id = results.front().id;
    last_exec_.last_attempts = results.front().attempts;
    last_exec_.last_solve_seconds = results.front().solve_seconds;
  }
  {
    const std::lock_guard<std::mutex> lk(agg_mu_);
    agg_.merge_from(req_reg);
    for (const ScenarioResult& r : results) {
      agg_.series["svc/latency_seconds"].push_back(r.total_seconds);
      agg_.series["svc/queue_seconds"].push_back(r.queue_seconds);
      agg_.series["svc/solve_seconds"].push_back(r.solve_seconds);
    }
  }

  for (std::size_t i = 0; i < B; ++i) {
    switch (results[i].status) {
      case RequestStatus::kCompleted:
        completed_.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestStatus::kCancelled:
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestStatus::kDeadlineExceeded:
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestStatus::kFailed:
        failed_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    batch[i]->promise.set_value(std::move(results[i]));
  }
}

}  // namespace quake::svc
