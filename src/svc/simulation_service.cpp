#include "quake/svc/simulation_service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "quake/par/communicator.hpp"

namespace quake::svc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Across-rank sum of a merged counter; 0 when the key is absent (obs
// disabled, or the solve never touched it).
double counter_sum(const obs::MergedReport& m, const std::string& key) {
  const auto it = m.counters.find(key);
  return it == m.counters.end() ? 0.0 : it->second.sum;
}

}  // namespace

struct SimulationService::Pending {
  std::uint64_t id = 0;
  int priority = 0;
  std::uint64_t seq = 0;  // admission order; FIFO tiebreak within a priority
  ScenarioRequest req;
  Clock::time_point admitted;
  std::promise<ScenarioResult> promise;
  std::shared_ptr<std::atomic<bool>> cancel_flag;
};

SimulationService::SimulationService(const mesh::HexMesh& mesh,
                                     const par::Partition& part,
                                     const solver::OperatorOptions& op_opt,
                                     const solver::SolverOptions& base,
                                     Options opt)
    : setup_(mesh, part, op_opt, base), opt_(opt) {
  paused_ = opt_.start_paused;
  worker_ = std::thread([this] { worker_loop(); });
}

SimulationService::~SimulationService() {
  std::deque<std::unique_ptr<Pending>> orphans;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
    orphans.swap(queue_);
    if (running_cancel_) {
      running_cancel_->store(true, std::memory_order_relaxed);
    }
  }
  work_cv_.notify_all();
  for (auto& p : orphans) {
    ScenarioResult r;
    r.id = p->id;
    r.status = RequestStatus::kCancelled;
    r.total_seconds = seconds_between(p->admitted, Clock::now());
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    p->promise.set_value(std::move(r));
  }
  if (worker_.joinable()) worker_.join();
}

SimulationService::Ticket SimulationService::submit(ScenarioRequest req) {
  auto p = std::make_unique<Pending>();
  p->req = std::move(req);
  p->priority = p->req.priority;
  p->cancel_flag = std::make_shared<std::atomic<bool>>(false);
  std::future<ScenarioResult> fut = p->promise.get_future();
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_) {
      throw std::runtime_error("SimulationService: submit after shutdown");
    }
    if (queue_.size() >= opt_.queue_bound) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      throw QueueFullError("SimulationService: admission queue full (" +
                           std::to_string(opt_.queue_bound) +
                           " requests waiting)");
    }
    id = next_id_.fetch_add(1, std::memory_order_relaxed);
    p->id = id;
    p->seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    p->admitted = Clock::now();
    admitted_.fetch_add(1, std::memory_order_relaxed);
    queue_.push_back(std::move(p));
  }
  work_cv_.notify_one();
  return Ticket{id, std::move(fut)};
}

bool SimulationService::cancel(std::uint64_t id) {
  std::unique_ptr<Pending> victim;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    if (running_id_ == id && running_cancel_) {
      // In flight: flip the cooperative flag; the ranks agree to stop at
      // the next step boundary and the request completes with kCancelled.
      running_cancel_->store(true, std::memory_order_relaxed);
      return true;
    }
    const auto it = std::find_if(
        queue_.begin(), queue_.end(),
        [id](const std::unique_ptr<Pending>& p) { return p->id == id; });
    if (it == queue_.end()) return false;
    victim = std::move(*it);
    queue_.erase(it);
  }
  ScenarioResult r;
  r.id = id;
  r.status = RequestStatus::kCancelled;
  r.total_seconds = seconds_between(victim->admitted, Clock::now());
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  victim->promise.set_value(std::move(r));
  idle_cv_.notify_all();
  return true;
}

void SimulationService::pause() {
  const std::lock_guard<std::mutex> lk(mu_);
  paused_ = true;
}

void SimulationService::resume() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void SimulationService::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] { return queue_.empty() && running_id_ == 0; });
}

std::size_t SimulationService::queue_depth() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

obs::Registry SimulationService::metrics() const {
  obs::Registry m;
  {
    const std::lock_guard<std::mutex> lk(agg_mu_);
    m = agg_;
  }
  m.counters["svc/requests_admitted"] =
      admitted_.load(std::memory_order_relaxed);
  m.counters["svc/requests_completed"] =
      completed_.load(std::memory_order_relaxed);
  m.counters["svc/requests_rejected"] =
      rejected_.load(std::memory_order_relaxed);
  m.counters["svc/requests_cancelled"] =
      cancelled_.load(std::memory_order_relaxed);
  m.counters["svc/requests_deadline_exceeded"] =
      deadline_exceeded_.load(std::memory_order_relaxed);
  m.counters["svc/requests_failed"] = failed_.load(std::memory_order_relaxed);
  m.counters["svc/retries"] = retries_.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lk(mu_);
    m.gauges["svc/queue_depth"] = static_cast<double>(queue_.size());
  }
  {
    const std::lock_guard<std::mutex> lk(health_mu_);
    m.gauges["svc/degraded"] = degraded_ ? 1.0 : 0.0;
  }
  return m;
}

ServiceHealth SimulationService::health() const {
  ServiceHealth h;
  {
    const std::lock_guard<std::mutex> lk(health_mu_);
    h = last_exec_;
    h.degraded = degraded_;
  }
  {
    const std::lock_guard<std::mutex> lk(mu_);
    h.queue_depth = queue_.size();
    h.in_flight = running_id_ != 0;
  }
  h.retries_total = retries_.load(std::memory_order_relaxed);
  h.failed_total = failed_.load(std::memory_order_relaxed);
  return h;
}

std::deque<std::unique_ptr<SimulationService::Pending>>::iterator
SimulationService::pick_next_locked() {
  auto best = queue_.begin();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((*it)->priority > (*best)->priority ||
        ((*it)->priority == (*best)->priority && (*it)->seq < (*best)->seq)) {
      best = it;
    }
  }
  return best;
}

void SimulationService::worker_loop() {
  for (;;) {
    std::unique_ptr<Pending> p;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(
          lk, [&] { return shutdown_ || (!paused_ && !queue_.empty()); });
      if (shutdown_) return;
      const auto it = pick_next_locked();
      p = std::move(*it);
      queue_.erase(it);
      running_id_ = p->id;
      running_cancel_ = p->cancel_flag;
    }
    const std::uint64_t exec_index =
        exec_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    ScenarioResult res = execute(*p, exec_index);
    switch (res.status) {
      case RequestStatus::kCompleted:
        completed_.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestStatus::kCancelled:
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestStatus::kDeadlineExceeded:
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestStatus::kFailed:
        failed_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    p->promise.set_value(std::move(res));
    {
      const std::lock_guard<std::mutex> lk(mu_);
      running_id_ = 0;
      running_cancel_.reset();
    }
    idle_cv_.notify_all();
  }
}

ScenarioResult SimulationService::execute(Pending& p,
                                          std::uint64_t exec_index) {
  ScenarioResult res;
  res.id = p.id;
  res.exec_index = exec_index;
  const Clock::time_point picked = Clock::now();
  res.queue_seconds = seconds_between(p.admitted, picked);

  // All request-scoped telemetry lands in a registry local to this request,
  // merged into the service aggregate afterwards — metrics() never reads a
  // registry a thread is still writing.
  obs::Registry req_reg;
  {
    const obs::ScopedRegistry install(req_reg);
    QUAKE_OBS_SCOPE("svc/request");

    // An end-to-end deadline covers queueing: what is left of the budget
    // after the wait is what the solve gets.
    double remaining_budget = 0.0;
    bool run_it = true;
    if (p.req.deadline_seconds > 0.0) {
      remaining_budget = p.req.deadline_seconds - res.queue_seconds;
      if (remaining_budget <= 0.0) {
        res.status = RequestStatus::kDeadlineExceeded;
        run_it = false;
      }
    }
    if (run_it && p.cancel_flag->load(std::memory_order_relaxed)) {
      res.status = RequestStatus::kCancelled;
      run_it = false;
    }

    if (run_it) {
      // Materialize the request's sources against the service's mesh; this
      // (plus receiver snapping inside the solve) is all the per-request
      // setup there is — the expensive state is shared.
      std::vector<std::unique_ptr<solver::SourceModel>> sources;
      {
        QUAKE_OBS_SCOPE("setup");
        sources.reserve(p.req.point_sources.size() +
                        p.req.fault_sources.size());
        for (const PointSourceSpec& s : p.req.point_sources) {
          sources.push_back(std::make_unique<solver::PointSource>(
              setup_.mesh(), s.position, s.direction, s.amplitude, s.fp,
              s.tc));
        }
        for (const solver::FaultSource::Spec& s : p.req.fault_sources) {
          sources.push_back(
              std::make_unique<solver::FaultSource>(setup_.mesh(), s));
        }
      }
      std::vector<const solver::SourceModel*> src_ptrs;
      src_ptrs.reserve(sources.size());
      for (const auto& s : sources) src_ptrs.push_back(s.get());

      par::RunControl ctl;
      ctl.cancel = p.cancel_flag.get();
      ctl.deadline_seconds = remaining_budget;
      ctl.check_every = opt_.cancel_check_every;

      const Clock::time_point t0 = Clock::now();
      // Service-level degradation: when the solve's own revival/restart
      // budget is spent (a rank-failure escapes ParallelSetup::run), retry
      // the whole request up to req.max_attempts times with exponential
      // backoff. Only recoverable faults are retried; deadlocks and setup
      // errors are deterministic and fail immediately. The run leaves the
      // shared setup reusable after a failure, so a retry starts clean.
      const int max_attempts = std::max(1, p.req.max_attempts);
      for (;;) {
        ++res.attempts;
        try {
          QUAKE_OBS_SCOPE("solve");
          res.solve = setup_.run(p.req.t_end, src_ptrs, p.req.receivers,
                                 p.req.ft, ctl);
          break;
        } catch (const par::DeadlockError& e) {
          res.status = RequestStatus::kFailed;
          res.error = e.what();
          break;
        } catch (const par::RankFailedError& e) {
          res.status = RequestStatus::kFailed;
          res.error = e.what();
          if (res.attempts >= max_attempts) break;
          if (p.cancel_flag->load(std::memory_order_relaxed)) break;
          if (p.req.deadline_seconds > 0.0 &&
              seconds_between(p.admitted, Clock::now()) >=
                  p.req.deadline_seconds) {
            break;  // the end-to-end budget is gone; a retry cannot finish
          }
          retries_.fetch_add(1, std::memory_order_relaxed);
          if (p.req.retry_backoff_seconds > 0.0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                p.req.retry_backoff_seconds *
                std::ldexp(1.0, res.attempts - 1)));
          }
          res.status = RequestStatus::kCompleted;  // reset for the retry
          res.error.clear();
        } catch (const std::exception& e) {
          // Request-level failure (bad receiver, unusable checkpoint, ...):
          // this request fails, the service — and the shared setup — keep
          // serving.
          res.status = RequestStatus::kFailed;
          res.error = e.what();
          break;
        }
      }
      res.solve_seconds = seconds_between(t0, Clock::now());

      {
        QUAKE_OBS_SCOPE("extract");
        if (res.status != RequestStatus::kFailed && res.solve.cancelled) {
          // Both stop conditions funnel through the same step-boundary
          // agreement; the cancel flag tells them apart.
          res.status = p.cancel_flag->load(std::memory_order_relaxed)
                           ? RequestStatus::kCancelled
                           : RequestStatus::kDeadlineExceeded;
        }
      }
    }
    res.total_seconds = seconds_between(p.admitted, Clock::now());
  }

  if (res.attempts > 0) {
    // Health bookkeeping for requests that actually ran: the service is
    // degraded while requests need service-level retries (or fail), and
    // recovers as soon as one completes on its first attempt.
    const std::lock_guard<std::mutex> lk(health_mu_);
    degraded_ = res.attempts > 1 || res.status == RequestStatus::kFailed;
    last_exec_.last_id = res.id;
    last_exec_.last_attempts = res.attempts;
    last_exec_.last_revives_used = res.solve.revives_used;
    last_exec_.last_revives_budget = p.req.ft.max_revives;
    last_exec_.last_revives_remaining =
        std::max(0, p.req.ft.max_revives - res.solve.revives_used);
    last_exec_.last_recoveries =
        counter_sum(res.solve.obs_summary, "par/recoveries");
    last_exec_.last_steps_rolled_back =
        counter_sum(res.solve.obs_summary, "par/steps_rolled_back");
    last_exec_.last_steps_replayed =
        counter_sum(res.solve.obs_summary, "par/steps_replayed");
    last_exec_.last_solve_seconds = res.solve_seconds;
  }

  {
    const std::lock_guard<std::mutex> lk(agg_mu_);
    agg_.merge_from(req_reg);
    agg_.series["svc/latency_seconds"].push_back(res.total_seconds);
    agg_.series["svc/queue_seconds"].push_back(res.queue_seconds);
    agg_.series["svc/solve_seconds"].push_back(res.solve_seconds);
  }
  return res;
}

}  // namespace quake::svc
