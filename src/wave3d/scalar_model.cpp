#include "quake/wave3d/scalar_model.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>

#include "quake/fem/hex_element.hpp"

namespace quake::wave3d {

void ScalarGrid3d::elem_nodes(int e, int out[8]) const {
  const int i = e % nx;
  const int j = (e / nx) % ny;
  const int k = e / (nx * ny);
  for (int c = 0; c < 8; ++c) {
    out[c] = node(i + (c & 1), j + ((c >> 1) & 1), k + ((c >> 2) & 1));
  }
}

void ScalarGrid3d::validate() const {
  if (nx < 1 || ny < 1 || nz < 1 || !(h > 0.0)) {
    throw std::invalid_argument("ScalarGrid3d: bad dimensions");
  }
}

ScalarModel3d::ScalarModel3d(const ScalarGrid3d& grid, std::vector<double> mu,
                             double rho)
    : grid_(grid), mu_(std::move(mu)), rho_(rho) {
  grid_.validate();
  if (mu_.size() != static_cast<std::size_t>(grid_.n_elems())) {
    throw std::invalid_argument("ScalarModel3d: mu size mismatch");
  }
  for (double m : mu_) {
    if (!(m > 0.0)) throw std::invalid_argument("ScalarModel3d: mu > 0");
  }

  mass_.assign(static_cast<std::size_t>(grid_.n_nodes()), 0.0);
  const double mnode = rho_ * grid_.h * grid_.h * grid_.h / 8.0;
  int conn[8];
  for (int e = 0; e < grid_.n_elems(); ++e) {
    grid_.elem_nodes(e, conn);
    for (int c = 0; c < 8; ++c) {
      mass_[static_cast<std::size_t>(conn[c])] += mnode;
    }
  }

  // Absorbing faces: all cube sides except the free surface z = 0.
  auto add_quad = [&](int n0, int n1, int n2, int n3, int e) {
    quads_.push_back({{n0, n1, n2, n3}, e});
  };
  for (int k = 0; k < grid_.nz; ++k) {
    for (int j = 0; j < grid_.ny; ++j) {
      add_quad(grid_.node(0, j, k), grid_.node(0, j + 1, k),
               grid_.node(0, j, k + 1), grid_.node(0, j + 1, k + 1),
               grid_.elem(0, j, k));
      add_quad(grid_.node(grid_.nx, j, k), grid_.node(grid_.nx, j + 1, k),
               grid_.node(grid_.nx, j, k + 1),
               grid_.node(grid_.nx, j + 1, k + 1),
               grid_.elem(grid_.nx - 1, j, k));
    }
  }
  for (int k = 0; k < grid_.nz; ++k) {
    for (int i = 0; i < grid_.nx; ++i) {
      add_quad(grid_.node(i, 0, k), grid_.node(i + 1, 0, k),
               grid_.node(i, 0, k + 1), grid_.node(i + 1, 0, k + 1),
               grid_.elem(i, 0, k));
      add_quad(grid_.node(i, grid_.ny, k), grid_.node(i + 1, grid_.ny, k),
               grid_.node(i, grid_.ny, k + 1),
               grid_.node(i + 1, grid_.ny, k + 1),
               grid_.elem(i, grid_.ny - 1, k));
    }
  }
  for (int j = 0; j < grid_.ny; ++j) {
    for (int i = 0; i < grid_.nx; ++i) {
      add_quad(grid_.node(i, j, grid_.nz), grid_.node(i + 1, j, grid_.nz),
               grid_.node(i, j + 1, grid_.nz),
               grid_.node(i + 1, j + 1, grid_.nz),
               grid_.elem(i, j, grid_.nz - 1));
    }
  }

  damping_.assign(static_cast<std::size_t>(grid_.n_nodes()), 0.0);
  for (const BoundaryQuad& q : quads_) {
    const double c = std::sqrt(rho_ * mu_[static_cast<std::size_t>(q.elem)]) *
                     grid_.h * grid_.h / 4.0;
    for (int n : q.nodes) damping_[static_cast<std::size_t>(n)] += c;
  }
}

void ScalarModel3d::apply_k(std::span<const double> u,
                            std::span<double> y) const {
  const auto& kr = fem::HexReference::get();
  int conn[8];
  double ue[8], ye[8];
  for (int e = 0; e < grid_.n_elems(); ++e) {
    grid_.elem_nodes(e, conn);
    for (int c = 0; c < 8; ++c) ue[c] = u[static_cast<std::size_t>(conn[c])];
    std::fill(ye, ye + 8, 0.0);
    fem::hex_scalar_apply(kr, ue, mu_[static_cast<std::size_t>(e)] * grid_.h,
                          ye);
    for (int c = 0; c < 8; ++c) y[static_cast<std::size_t>(conn[c])] += ye[c];
  }
}

void ScalarModel3d::apply_k_delta(std::span<const double> dmu,
                                  std::span<const double> u,
                                  std::span<double> y) const {
  const auto& kr = fem::HexReference::get();
  int conn[8];
  double ue[8], ye[8];
  for (int e = 0; e < grid_.n_elems(); ++e) {
    const double d = dmu[static_cast<std::size_t>(e)];
    if (d == 0.0) continue;
    grid_.elem_nodes(e, conn);
    for (int c = 0; c < 8; ++c) ue[c] = u[static_cast<std::size_t>(conn[c])];
    std::fill(ye, ye + 8, 0.0);
    fem::hex_scalar_apply(kr, ue, d * grid_.h, ye);
    for (int c = 0; c < 8; ++c) y[static_cast<std::size_t>(conn[c])] += ye[c];
  }
}

void ScalarModel3d::accumulate_k_form(std::span<const double> lambda,
                                      std::span<const double> u,
                                      std::span<double> ge) const {
  const auto& kr = fem::HexReference::get();
  int conn[8];
  double ue[8], ye[8], le[8];
  for (int e = 0; e < grid_.n_elems(); ++e) {
    grid_.elem_nodes(e, conn);
    for (int c = 0; c < 8; ++c) {
      ue[c] = u[static_cast<std::size_t>(conn[c])];
      le[c] = lambda[static_cast<std::size_t>(conn[c])];
    }
    std::fill(ye, ye + 8, 0.0);
    fem::hex_scalar_apply(kr, ue, grid_.h, ye);
    double s = 0.0;
    for (int c = 0; c < 8; ++c) s += le[c] * ye[c];
    ge[static_cast<std::size_t>(e)] += s;
  }
}

void ScalarModel3d::apply_c_delta(std::span<const double> dmu,
                                  std::span<const double> v,
                                  std::span<double> y) const {
  for (const BoundaryQuad& q : quads_) {
    const double d = dmu[static_cast<std::size_t>(q.elem)];
    if (d == 0.0) continue;
    const double mu_e = mu_[static_cast<std::size_t>(q.elem)];
    const double dc =
        0.5 * std::sqrt(rho_ / mu_e) * grid_.h * grid_.h / 4.0 * d;
    for (int n : q.nodes) {
      y[static_cast<std::size_t>(n)] += dc * v[static_cast<std::size_t>(n)];
    }
  }
}

void ScalarModel3d::accumulate_c_form(std::span<const double> lambda,
                                      std::span<const double> v,
                                      std::span<double> ge) const {
  for (const BoundaryQuad& q : quads_) {
    const double mu_e = mu_[static_cast<std::size_t>(q.elem)];
    const double dc = 0.5 * std::sqrt(rho_ / mu_e) * grid_.h * grid_.h / 4.0;
    double s = 0.0;
    for (int n : q.nodes) {
      s += lambda[static_cast<std::size_t>(n)] * v[static_cast<std::size_t>(n)];
    }
    ge[static_cast<std::size_t>(q.elem)] += dc * s;
  }
}

double ScalarModel3d::stable_dt(double cfl_fraction) const {
  double mu_max = 0.0;
  for (double m : mu_) mu_max = std::max(mu_max, m);
  return cfl_fraction * grid_.h / std::sqrt(mu_max / rho_);
}

March3dResult time_march3d(const ScalarModel3d& model, double dt, int nt,
                           const RhsFn3d& rhs,
                           std::span<const int> receiver_nodes,
                           bool store_history) {
  if (!(dt > 0.0) || nt < 1) {
    throw std::invalid_argument("time_march3d: bad dt or nt");
  }
  const std::size_t n = static_cast<std::size_t>(model.grid().n_nodes());
  const auto mass = model.mass();
  const auto damp = model.damping();
  std::vector<double> inv_ap(n), am(n);
  for (std::size_t i = 0; i < n; ++i) {
    inv_ap[i] = 1.0 / (mass[i] + 0.5 * dt * damp[i]);
    am[i] = mass[i] - 0.5 * dt * damp[i];
  }

  March3dResult out;
  if (store_history) out.history.reserve(static_cast<std::size_t>(nt));
  out.records.assign(receiver_nodes.size(), {});

  std::vector<double> u(n, 0.0), u_prev(n, 0.0), u_next(n), f(n), ku(n);
  for (int k = 0; k < nt; ++k) {
    std::fill(f.begin(), f.end(), 0.0);
    rhs(k, k * dt, f);
    std::fill(ku.begin(), ku.end(), 0.0);
    model.apply_k(u, ku);
    const double dt2 = dt * dt;
    for (std::size_t i = 0; i < n; ++i) {
      u_next[i] =
          (dt2 * (f[i] - ku[i]) + 2.0 * mass[i] * u[i] - am[i] * u_prev[i]) *
          inv_ap[i];
    }
    std::swap(u_prev, u);
    std::swap(u, u_next);
    if (store_history) out.history.push_back(u);
    for (std::size_t r = 0; r < receiver_nodes.size(); ++r) {
      out.records[r].push_back(u[static_cast<std::size_t>(receiver_nodes[r])]);
    }
  }
  return out;
}

}  // namespace quake::wave3d
