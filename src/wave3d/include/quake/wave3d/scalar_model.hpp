#pragma once

// 3D scalar wave substrate for the Table 3.1 experiment, which the paper
// runs on "the scalar 3D wave equation" with up to 2.1M material
// parameters: rho u'' - div(mu grad u) = f on a uniform trilinear-hex grid,
// free surface on top, first-order absorbing boundaries elsewhere. Shares
// the 8x8 scalar reference stiffness with the elastodynamic hex element.

#include <array>
#include <functional>
#include <span>
#include <vector>

namespace quake::wave3d {

struct ScalarGrid3d {
  int nx = 0, ny = 0, nz = 0;  // elements per direction; z is depth
  double h = 0.0;              // element edge [m]

  [[nodiscard]] int n_nodes() const {
    return (nx + 1) * (ny + 1) * (nz + 1);
  }
  [[nodiscard]] int n_elems() const { return nx * ny * nz; }
  [[nodiscard]] int node(int i, int j, int k) const {
    return (k * (ny + 1) + j) * (nx + 1) + i;
  }
  [[nodiscard]] int elem(int i, int j, int k) const {
    return (k * ny + j) * nx + i;
  }
  // Tensor-ordered element connectivity (matches fem::HexReference).
  void elem_nodes(int e, int out[8]) const;
  void validate() const;
};

class ScalarModel3d {
 public:
  ScalarModel3d(const ScalarGrid3d& grid, std::vector<double> mu, double rho);

  [[nodiscard]] const ScalarGrid3d& grid() const { return grid_; }
  [[nodiscard]] std::span<const double> mu() const { return mu_; }
  [[nodiscard]] double rho() const { return rho_; }

  // y += K(mu) u   (K_e = mu_e * h * K_scalar).
  void apply_k(std::span<const double> u, std::span<double> y) const;
  void apply_k_delta(std::span<const double> dmu, std::span<const double> u,
                     std::span<double> y) const;
  // ge[e] += lambda^T (h K_scalar) u on element e (the mu_e coefficient).
  void accumulate_k_form(std::span<const double> lambda,
                         std::span<const double> u,
                         std::span<double> ge) const;

  [[nodiscard]] std::span<const double> mass() const { return mass_; }
  [[nodiscard]] std::span<const double> damping() const { return damping_; }
  void apply_c_delta(std::span<const double> dmu, std::span<const double> v,
                     std::span<double> y) const;
  void accumulate_c_form(std::span<const double> lambda,
                         std::span<const double> v,
                         std::span<double> ge) const;

  [[nodiscard]] double stable_dt(double cfl_fraction) const;

 private:
  struct BoundaryQuad {
    std::array<int, 4> nodes;
    int elem;
  };
  ScalarGrid3d grid_;
  std::vector<double> mu_;
  double rho_;
  std::vector<double> mass_, damping_;
  std::vector<BoundaryQuad> quads_;
};

// The shared explicit central-difference recurrence (identical to wave2d's):
//   (M + dt/2 C) u^{k+1} = dt^2 (f^k - K u^k) + 2M u^k - (M - dt/2 C) u^{k-1}.
using RhsFn3d = std::function<void(int k, double t, std::span<double> f)>;

struct March3dResult {
  std::vector<std::vector<double>> history;  // u^{k+1}, k = 0..nt-1
  std::vector<std::vector<double>> records;  // per receiver node
};

March3dResult time_march3d(const ScalarModel3d& model, double dt, int nt,
                           const RhsFn3d& rhs,
                           std::span<const int> receiver_nodes,
                           bool store_history);

}  // namespace quake::wave3d
