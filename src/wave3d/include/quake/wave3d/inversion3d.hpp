#pragma once

// 3D scalar-wave material inversion — the exact setting of Table 3.1
// ("algorithmic scalability of inversion algorithm for scalar 3D wave
// equation case"): a fixed wave-propagation grid, a ladder of trilinear
// material grids, Gauss-Newton-CG with an exact discrete adjoint. Known
// point sources; receivers on the free surface.

#include <span>
#include <vector>

#include "quake/opt/cg.hpp"
#include "quake/wave3d/scalar_model.hpp"

namespace quake::wave3d {

struct PointSource3d {
  int node = 0;
  double amplitude = 1.0;
  double fp = 1.0;  // Ricker peak frequency [Hz]
  double tc = 1.0;  // center time [s]
};

struct Setup3d {
  ScalarGrid3d grid;
  double rho = 0.0;
  std::vector<PointSource3d> sources;
  std::vector<int> receiver_nodes;
  double dt = 0.0;
  int nt = 0;
  std::vector<std::vector<double>> observations;  // per receiver
};

class ScalarInversion3d {
 public:
  explicit ScalarInversion3d(Setup3d setup);

  [[nodiscard]] const Setup3d& setup() const { return setup_; }

  struct ForwardOut {
    March3dResult march;
    std::vector<std::vector<double>> residuals;
    double misfit = 0.0;
  };
  ForwardOut forward(const ScalarModel3d& model, bool store_history) const;

  // Adjoint in reversed time (lambda^{k+1} = result[nt-k-1]).
  std::vector<std::vector<double>> adjoint(
      const ScalarModel3d& model,
      const std::vector<std::vector<double>>& driver) const;

  void assemble_gradient(const ScalarModel3d& model,
                         const std::vector<std::vector<double>>& u,
                         const std::vector<std::vector<double>>& nu,
                         std::span<double> ge) const;

  void gauss_newton(const ScalarModel3d& model,
                    const std::vector<std::vector<double>>& u,
                    std::span<const double> dmu, std::span<double> h_dmu) const;

 private:
  void add_sources(double t, std::span<double> f) const;
  Setup3d setup_;
};

// Trilinear material grid over the wave domain: mu_e = P m.
class MaterialGrid3d {
 public:
  MaterialGrid3d(const ScalarGrid3d& wave, int gx, int gy, int gz);
  [[nodiscard]] std::size_t n_params() const {
    return static_cast<std::size_t>((gx_ + 1) * (gy_ + 1) * (gz_ + 1));
  }
  void apply(std::span<const double> m, std::span<double> mu) const;
  void apply_transpose(std::span<const double> ge, std::span<double> gm) const;

 private:
  struct Interp {
    int idx[8];
    double w[8];
  };
  int gx_, gy_, gz_;
  std::vector<Interp> elem_interp_;
};

struct Inversion3dOptions {
  int gx = 2, gy = 2, gz = 2;  // material grid (cells)
  int max_newton = 12;
  opt::CgOptions cg{30, 0.5};
  double beta_h1 = 0.0;   // absolute H1 (smoothness) weight
  // Relative H1 weight: beta = beta_h1_rel * ||H v|| / ||L v|| measured on
  // a probe direction at the first Newton step (data-Hessian scale is
  // problem-dependent). Used when > 0; overrides beta_h1.
  double beta_h1_rel = 0.0;
  double mu_min = 1e6;
  double initial_mu = 0.0;
  // Warm start (multiscale continuation): element mu field from a coarser
  // stage; material-grid nodes are initialized by sampling it. Overrides
  // initial_mu when non-empty.
  std::vector<double> initial_mu_field;
  double grad_tol = 1e-2;
};

struct Inversion3dReport {
  std::size_t n_params = 0;
  int newton_iters = 0;
  int cg_iters = 0;
  double misfit_initial = 0.0;
  double misfit_final = 0.0;
  double grad_reduction = 1.0;
  double model_error = 0.0;
  std::vector<double> mu;
};

Inversion3dReport invert_material3d(const ScalarInversion3d& prob,
                                    const Inversion3dOptions& opt,
                                    std::span<const double> mu_target = {});

}  // namespace quake::wave3d
