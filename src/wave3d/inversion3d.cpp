#include "quake/wave3d/inversion3d.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "quake/obs/obs.hpp"
#include "quake/opt/lbfgs.hpp"
#include "quake/opt/linesearch.hpp"
#include "quake/util/log.hpp"
#include "quake/util/stats.hpp"

namespace quake::wave3d {
namespace {

double ricker(double t, double fp, double tc) {
  const double a = std::numbers::pi * fp * (t - tc);
  return (1.0 - 2.0 * a * a) * std::exp(-a * a);
}

const std::vector<double>* state_at(
    const std::vector<std::vector<double>>& u, int k) {
  if (k <= 0) return nullptr;
  return &u[static_cast<std::size_t>(k - 1)];
}

}  // namespace

ScalarInversion3d::ScalarInversion3d(Setup3d setup)
    : setup_(std::move(setup)) {
  setup_.grid.validate();
  if (!(setup_.dt > 0.0) || setup_.nt < 1) {
    throw std::invalid_argument("ScalarInversion3d: bad dt/nt");
  }
}

void ScalarInversion3d::add_sources(double t, std::span<double> f) const {
  for (const PointSource3d& s : setup_.sources) {
    f[static_cast<std::size_t>(s.node)] += s.amplitude * ricker(t, s.fp, s.tc);
  }
}

ScalarInversion3d::ForwardOut ScalarInversion3d::forward(
    const ScalarModel3d& model, bool store_history) const {
  ForwardOut out;
  out.march = time_march3d(
      model, setup_.dt, setup_.nt,
      [this](int, double t, std::span<double> f) { add_sources(t, f); },
      setup_.receiver_nodes, store_history);
  if (!setup_.observations.empty()) {
    out.residuals.resize(out.march.records.size());
    double j = 0.0;
    for (std::size_t r = 0; r < out.march.records.size(); ++r) {
      out.residuals[r].resize(out.march.records[r].size());
      for (std::size_t k = 0; k < out.march.records[r].size(); ++k) {
        const double res =
            out.march.records[r][k] - setup_.observations[r][k];
        out.residuals[r][k] = res;
        j += res * res;
      }
    }
    out.misfit = 0.5 * setup_.dt * j;
  }
  return out;
}

std::vector<std::vector<double>> ScalarInversion3d::adjoint(
    const ScalarModel3d& model,
    const std::vector<std::vector<double>>& driver) const {
  const int nt = setup_.nt;
  const double inv_dt = 1.0 / setup_.dt;
  March3dResult res = time_march3d(
      model, setup_.dt, nt,
      [&](int k, double, std::span<double> f) {
        const int obs = nt - k - 1;
        for (std::size_t r = 0; r < setup_.receiver_nodes.size(); ++r) {
          f[static_cast<std::size_t>(setup_.receiver_nodes[r])] -=
              driver[r][static_cast<std::size_t>(obs)] * inv_dt;
        }
      },
      {}, /*store_history=*/true);
  return std::move(res.history);
}

void ScalarInversion3d::assemble_gradient(
    const ScalarModel3d& model, const std::vector<std::vector<double>>& u,
    const std::vector<std::vector<double>>& nu, std::span<double> ge) const {
  const int nt = setup_.nt;
  const double dt = setup_.dt;
  const std::size_t n = static_cast<std::size_t>(setup_.grid.n_nodes());
  std::vector<double> scaled(n), diff(n);
  for (int k = 0; k < nt; ++k) {
    const std::vector<double>& lambda =
        nu[static_cast<std::size_t>(nt - k - 1)];
    if (const auto* uk = state_at(u, k)) {
      for (std::size_t i = 0; i < n; ++i) scaled[i] = dt * dt * lambda[i];
      model.accumulate_k_form(scaled, *uk, ge);
    }
    const auto* up = state_at(u, k + 1);
    const auto* um = state_at(u, k - 1);
    if (up != nullptr || um != nullptr) {
      for (std::size_t i = 0; i < n; ++i) {
        diff[i] = (up ? (*up)[i] : 0.0) - (um ? (*um)[i] : 0.0);
      }
      for (std::size_t i = 0; i < n; ++i) scaled[i] = 0.5 * dt * lambda[i];
      model.accumulate_c_form(scaled, diff, ge);
    }
  }
}

void ScalarInversion3d::gauss_newton(
    const ScalarModel3d& model, const std::vector<std::vector<double>>& u,
    std::span<const double> dmu, std::span<double> h_dmu) const {
  const std::size_t n = static_cast<std::size_t>(setup_.grid.n_nodes());
  std::vector<double> diff(n), tmp(n);
  March3dResult inc = time_march3d(
      model, setup_.dt, setup_.nt,
      [&](int k, double, std::span<double> f) {
        if (const auto* uk = state_at(u, k)) {
          std::fill(tmp.begin(), tmp.end(), 0.0);
          model.apply_k_delta(dmu, *uk, tmp);
          for (std::size_t i = 0; i < n; ++i) f[i] -= tmp[i];
        }
        const auto* up = state_at(u, k + 1);
        const auto* um = state_at(u, k - 1);
        if (up != nullptr || um != nullptr) {
          for (std::size_t i = 0; i < n; ++i) {
            diff[i] = (up ? (*up)[i] : 0.0) - (um ? (*um)[i] : 0.0);
          }
          std::fill(tmp.begin(), tmp.end(), 0.0);
          model.apply_c_delta(dmu, diff, tmp);
          const double s = 1.0 / (2.0 * setup_.dt);
          for (std::size_t i = 0; i < n; ++i) f[i] -= s * tmp[i];
        }
      },
      setup_.receiver_nodes, /*store_history=*/false);
  const auto nu = adjoint(model, inc.records);
  assemble_gradient(model, u, nu, h_dmu);
}

MaterialGrid3d::MaterialGrid3d(const ScalarGrid3d& wave, int gx, int gy,
                               int gz)
    : gx_(gx), gy_(gy), gz_(gz) {
  if (gx < 1 || gy < 1 || gz < 1) {
    throw std::invalid_argument("MaterialGrid3d: need >= 1 cell per side");
  }
  const double dx = wave.nx * wave.h / gx;
  const double dy = wave.ny * wave.h / gy;
  const double dz = wave.nz * wave.h / gz;
  elem_interp_.reserve(static_cast<std::size_t>(wave.n_elems()));
  for (int e = 0; e < wave.n_elems(); ++e) {
    const int i = e % wave.nx;
    const int j = (e / wave.nx) % wave.ny;
    const int k = e / (wave.nx * wave.ny);
    const double fx =
        std::clamp(((i + 0.5) * wave.h) / dx, 0.0, static_cast<double>(gx));
    const double fy =
        std::clamp(((j + 0.5) * wave.h) / dy, 0.0, static_cast<double>(gy));
    const double fz =
        std::clamp(((k + 0.5) * wave.h) / dz, 0.0, static_cast<double>(gz));
    const int ci = std::min(static_cast<int>(fx), gx - 1);
    const int cj = std::min(static_cast<int>(fy), gy - 1);
    const int ck = std::min(static_cast<int>(fz), gz - 1);
    const double tx = fx - ci, ty = fy - cj, tz = fz - ck;
    Interp it;
    int q = 0;
    for (int c = 0; c < 8; ++c) {
      const int ii = ci + (c & 1);
      const int jj = cj + ((c >> 1) & 1);
      const int kk = ck + ((c >> 2) & 1);
      it.idx[q] = (kk * (gy + 1) + jj) * (gx + 1) + ii;
      it.w[q] = ((c & 1) ? tx : 1.0 - tx) * ((c & 2) ? ty : 1.0 - ty) *
                ((c & 4) ? tz : 1.0 - tz);
      ++q;
    }
    elem_interp_.push_back(it);
  }
}

void MaterialGrid3d::apply(std::span<const double> m,
                           std::span<double> mu) const {
  for (std::size_t e = 0; e < elem_interp_.size(); ++e) {
    const Interp& it = elem_interp_[e];
    double v = 0.0;
    for (int c = 0; c < 8; ++c) {
      v += it.w[c] * m[static_cast<std::size_t>(it.idx[c])];
    }
    mu[e] = v;
  }
}

void MaterialGrid3d::apply_transpose(std::span<const double> ge,
                                     std::span<double> gm) const {
  for (std::size_t e = 0; e < elem_interp_.size(); ++e) {
    const Interp& it = elem_interp_[e];
    for (int c = 0; c < 8; ++c) {
      gm[static_cast<std::size_t>(it.idx[c])] += it.w[c] * ge[e];
    }
  }
}

namespace {

// Graph Laplacian on the (gx+1)x(gy+1)x(gz+1) material grid: out += L v.
void graph_laplacian(int gx, int gy, int gz, std::span<const double> v,
                     std::span<double> out) {
  const int sx = 1, sy = gx + 1, sz = (gx + 1) * (gy + 1);
  for (int k = 0; k <= gz; ++k) {
    for (int j = 0; j <= gy; ++j) {
      for (int i = 0; i <= gx; ++i) {
        const int idx = k * sz + j * sy + i * sx;
        double acc = 0.0;
        int deg = 0;
        auto nb = [&](int o) {
          acc += v[static_cast<std::size_t>(o)];
          ++deg;
        };
        if (i > 0) nb(idx - sx);
        if (i < gx) nb(idx + sx);
        if (j > 0) nb(idx - sy);
        if (j < gy) nb(idx + sy);
        if (k > 0) nb(idx - sz);
        if (k < gz) nb(idx + sz);
        out[static_cast<std::size_t>(idx)] +=
            deg * v[static_cast<std::size_t>(idx)] - acc;
      }
    }
  }
}

}  // namespace

Inversion3dReport invert_material3d(const ScalarInversion3d& prob,
                                    const Inversion3dOptions& opt,
                                    std::span<const double> mu_target) {
  const auto& setup = prob.setup();
  const std::size_t ne = static_cast<std::size_t>(setup.grid.n_elems());
  const MaterialGrid3d mg(setup.grid, opt.gx, opt.gy, opt.gz);
  const std::size_t np = mg.n_params();

  Inversion3dReport report;
  report.n_params = np;
  double beta_h1 = opt.beta_h1;  // possibly rescaled at the first iteration
  // Morales-Nocedal refresh: precondition with the previous CG's pairs.
  opt::LbfgsOperator lbfgs_prev(np, 30), lbfgs_next(np, 30);
  std::vector<double> m(np, opt.initial_mu);
  if (!opt.initial_mu_field.empty()) {
    // Sample the coarser stage's element field at the material-grid nodes.
    const auto& g = setup.grid;
    for (int k = 0; k <= opt.gz; ++k) {
      for (int j = 0; j <= opt.gy; ++j) {
        for (int i = 0; i <= opt.gx; ++i) {
          const int ei = std::min(g.nx - 1, i * g.nx / std::max(1, opt.gx));
          const int ej = std::min(g.ny - 1, j * g.ny / std::max(1, opt.gy));
          const int ek = std::min(g.nz - 1, k * g.nz / std::max(1, opt.gz));
          m[static_cast<std::size_t>(
              (k * (opt.gy + 1) + j) * (opt.gx + 1) + i)] =
              opt.initial_mu_field[static_cast<std::size_t>(
                  g.elem(ei, ej, ek))];
        }
      }
    }
  }
  std::vector<double> mu(ne), ge(ne), g(np), d(np);

  auto h1_value = [&](std::span<const double> mm) {
    if (!(beta_h1 > 0.0)) return 0.0;
    std::vector<double> lm(np, 0.0);
    graph_laplacian(opt.gx, opt.gy, opt.gz, mm, lm);
    return 0.5 * beta_h1 * util::dot(mm, lm);
  };
  auto objective = [&](std::span<const double> mm) {
    std::vector<double> mu_try(ne);
    mg.apply(mm, mu_try);
    const ScalarModel3d model(setup.grid, std::move(mu_try), setup.rho);
    return prob.forward(model, false).misfit + h1_value(mm);
  };

  double g0 = -1.0;
  for (int newton = 0; newton < opt.max_newton; ++newton) {
    QUAKE_OBS_SCOPE("gn/newton");
    obs::counter_add("gn/newton_total", 1);
    mg.apply(m, mu);
    const ScalarModel3d model(setup.grid, std::vector<double>(mu), setup.rho);
    const auto fwd = [&] {
      QUAKE_OBS_SCOPE("forward");
      return prob.forward(model, /*history=*/true);
    }();
    if (newton == 0) report.misfit_initial = fwd.misfit;
    report.misfit_final = fwd.misfit;
    obs::series_append("gn/misfit", fwd.misfit);

    {
      QUAKE_OBS_SCOPE("adjoint");
      const auto nu = prob.adjoint(model, fwd.residuals);
      std::fill(ge.begin(), ge.end(), 0.0);
      prob.assemble_gradient(model, fwd.march.history, nu, ge);
    }
    std::fill(g.begin(), g.end(), 0.0);
    mg.apply_transpose(ge, g);
    if (opt.beta_h1_rel > 0.0 && newton == 0) {
      // Calibrate the smoothness weight against the data-term curvature on
      // an alternating-sign probe direction.
      std::vector<double> v(np), hv(np, 0.0), lv(np, 0.0), dmu(ne), he(ne, 0.0);
      for (std::size_t i = 0; i < np; ++i) v[i] = (i % 2 == 0) ? 1.0 : -1.0;
      mg.apply(v, dmu);
      prob.gauss_newton(model, fwd.march.history, dmu, he);
      mg.apply_transpose(he, hv);
      graph_laplacian(opt.gx, opt.gy, opt.gz, v, lv);
      const double hn = util::norm_l2(hv), ln = util::norm_l2(lv);
      beta_h1 = ln > 0.0 ? opt.beta_h1_rel * hn / ln : 0.0;
      QUAKE_LOG_DEBUG("inv3d: calibrated beta_h1 = %.3e", beta_h1);
    }
    if (beta_h1 > 0.0) {
      std::vector<double> lm(np, 0.0);
      graph_laplacian(opt.gx, opt.gy, opt.gz, m, lm);
      for (std::size_t i = 0; i < np; ++i) g[i] += beta_h1 * lm[i];
    }

    const double gnorm = util::norm_l2(g);
    obs::series_append("gn/grad_norm", gnorm);
    if (g0 < 0.0) g0 = gnorm;
    report.grad_reduction = g0 > 0.0 ? gnorm / g0 : 1.0;
    QUAKE_LOG_DEBUG("inv3d newton %d: misfit=%.4e |g|=%.3e", newton,
                    fwd.misfit, gnorm);
    if (gnorm <= opt.grad_tol * g0) break;

    opt::LinOp hvp = [&](std::span<const double> v, std::span<double> hv) {
      QUAKE_OBS_SCOPE("hessvec");
      std::vector<double> dmu(ne), he(ne, 0.0);
      mg.apply(v, dmu);
      prob.gauss_newton(model, fwd.march.history, dmu, he);
      mg.apply_transpose(he, hv);
      if (beta_h1 > 0.0) {
        std::vector<double> lv(np, 0.0);
        graph_laplacian(opt.gx, opt.gy, opt.gz, v, lv);
        for (std::size_t i = 0; i < np; ++i) hv[i] += beta_h1 * lv[i];
      }
    };

    std::vector<double> b(np);
    for (std::size_t i = 0; i < np; ++i) b[i] = -g[i];
    std::fill(d.begin(), d.end(), 0.0);
    opt::LinOp precond = [&](std::span<const double> v,
                             std::span<double> out) {
      lbfgs_prev.apply(v, out);
    };
    lbfgs_next.clear();
    opt::PairCollector collect = [&](std::span<const double> s,
                                     std::span<const double> y) {
      lbfgs_next.add_pair(s, y);
    };
    const auto cg = [&] {
      QUAKE_OBS_SCOPE("cg");
      return opt::conjugate_gradient(hvp, b, d, opt.cg, &precond, &collect);
    }();
    report.cg_iters += cg.iterations;
    obs::series_append("gn/cg_iters", static_cast<double>(cg.iterations));
    obs::counter_add("gn/cg_total", cg.iterations);
    if (util::norm_l2(d) == 0.0) break;

    double dphi0 = util::dot(g, d);
    if (dphi0 >= 0.0) {
      for (std::size_t i = 0; i < np; ++i) d[i] = -g[i];
      dphi0 = -gnorm * gnorm;
    }
    auto projected = [&](double alpha) {
      std::vector<double> trial(m);
      for (std::size_t i = 0; i < np; ++i) {
        trial[i] = std::max(opt.mu_min, trial[i] + alpha * d[i]);
      }
      return trial;
    };
    const double j0 = fwd.misfit + h1_value(m);
    const auto ls = [&] {
      QUAKE_OBS_SCOPE("linesearch");
      return opt::armijo_backtracking(
          [&](double a) { return objective(projected(a)); }, j0, dphi0,
          opt::ArmijoOptions{});
    }();
    obs::series_append("gn/ls_evals", static_cast<double>(ls.evaluations));
    ++report.newton_iters;
    std::swap(lbfgs_prev, lbfgs_next);
    QUAKE_LOG_DEBUG("inv3d   cg=%d (res %.2e->%.2e%s) |d|=%.3e dphi0=%.3e alpha=%.3e",
                    cg.iterations, cg.initial_residual, cg.final_residual,
                    cg.hit_negative_curvature ? ", NEGCURV" : "",
                    util::norm_l2(d), dphi0, ls.alpha);
    if (!ls.success) break;
    m = projected(ls.alpha);
  }

  report.mu.resize(ne);
  mg.apply(m, report.mu);
  if (!mu_target.empty()) {
    report.model_error = util::rel_l2(report.mu, mu_target);
  }
  return report;
}

}  // namespace quake::wave3d
