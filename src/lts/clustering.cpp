#include "quake/lts/clustering.hpp"

#include <algorithm>
#include <stdexcept>

namespace quake::lts {

namespace {

// Largest power-of-two exponent q with (1 << q) <= ratio, clamped to
// [0, cap_log2]. ratio < 1 maps to 0 (the element is the CFL-binding one).
int floor_pow2_log2(double ratio, int cap_log2) {
  int q = 0;
  while (q < cap_log2 && ratio >= static_cast<double>(2 << q)) ++q;
  return q;
}

int cap_log2_of(int max_rate) {
  int lg = 0;
  while ((2 << lg) <= max_rate) ++lg;
  return lg;
}

}  // namespace

double Clustering::predicted_update_fraction() const {
  if (elem_class_log2.empty()) return 1.0;
  double updates = 0.0;
  for (const std::uint8_t c : elem_class_log2) {
    updates += 1.0 / static_cast<double>(1 << c);
  }
  return updates / static_cast<double>(elem_class_log2.size());
}

double Clustering::predicted_updates_saved() const {
  const double f = predicted_update_fraction();
  return f > 0.0 ? 1.0 / f : 1.0;
}

std::vector<double> element_stable_dt(const mesh::HexMesh& mesh,
                                      double cfl_fraction) {
  std::vector<double> dt(mesh.n_elements());
  for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
    dt[e] = cfl_fraction * mesh.elem_size[e] / mesh.elem_mat[e].vp();
  }
  return dt;
}

Clustering cluster_elements(const mesh::HexMesh& mesh, double base_dt,
                            double cfl_fraction, int max_rate) {
  if (!(base_dt > 0.0)) {
    throw std::invalid_argument("cluster_elements: base_dt must be positive");
  }
  if (max_rate < 1) {
    throw std::invalid_argument("cluster_elements: max_rate must be >= 1");
  }
  const std::size_t E = mesh.n_elements();
  const std::size_t N = mesh.n_nodes();
  const int cap = cap_log2_of(max_rate);

  Clustering cl;
  cl.base_dt = base_dt;
  cl.elem_rate_log2.assign(E, 0);
  cl.elem_class_log2.assign(E, 0);
  cl.node_rate_log2.assign(N, 0);

  // ---- raw power-of-two bins against the base step ------------------------
  const std::vector<double> dt_e = element_stable_dt(mesh, cfl_fraction);
  for (std::size_t e = 0; e < E; ++e) {
    cl.elem_rate_log2[e] =
        static_cast<std::uint8_t>(floor_pow2_log2(dt_e[e] / base_dt, cap));
  }

  // ---- +-1 adjacency normalization ----------------------------------------
  // Iterate to a fixed point: the node value is the min rate over touching
  // elements, folded across each constraint group (hanging node + masters),
  // and every element is clamped to one level above the min over its nodes.
  // Rates only decrease, so the sweep terminates (at most cap rounds).
  std::vector<std::uint8_t> node_min(N);
  const auto fold_node_min = [&]() {
    std::fill(node_min.begin(), node_min.end(),
              static_cast<std::uint8_t>(cap));
    for (std::size_t e = 0; e < E; ++e) {
      for (const mesh::NodeId n : mesh.elem_nodes[e]) {
        node_min[static_cast<std::size_t>(n)] =
            std::min(node_min[static_cast<std::size_t>(n)],
                     cl.elem_rate_log2[e]);
      }
    }
    // Constraint groups fold to their min, iterated to a fixed point so a
    // master shared by two constraints chains the min through both — every
    // node of a (transitively) connected constraint group ends on one
    // cadence, which is what the interface-buffer argument relies on.
    for (bool fold_changed = true; fold_changed;) {
      fold_changed = false;
      for (const mesh::Constraint& c : mesh.constraints) {
        std::uint8_t g = node_min[static_cast<std::size_t>(c.node)];
        for (int m = 0; m < c.n_masters; ++m) {
          g = std::min(
              g, node_min[static_cast<std::size_t>(
                     c.masters[static_cast<std::size_t>(m)])]);
        }
        if (node_min[static_cast<std::size_t>(c.node)] != g) {
          node_min[static_cast<std::size_t>(c.node)] = g;
          fold_changed = true;
        }
        for (int m = 0; m < c.n_masters; ++m) {
          auto& v = node_min[static_cast<std::size_t>(
              c.masters[static_cast<std::size_t>(m)])];
          if (v != g) {
            v = g;
            fold_changed = true;
          }
        }
      }
    }
  };
  for (bool changed = true; changed;) {
    changed = false;
    fold_node_min();
    for (std::size_t e = 0; e < E; ++e) {
      std::uint8_t nbr = static_cast<std::uint8_t>(cap);
      for (const mesh::NodeId n : mesh.elem_nodes[e]) {
        nbr = std::min(nbr, node_min[static_cast<std::size_t>(n)]);
      }
      const std::uint8_t limit = static_cast<std::uint8_t>(
          std::min<int>(cap, static_cast<int>(nbr) + 1));
      if (cl.elem_rate_log2[e] > limit) {
        cl.elem_rate_log2[e] = limit;
        changed = true;
      }
    }
  }

  // ---- derived cadences ---------------------------------------------------
  fold_node_min();
  cl.node_rate_log2 = node_min;
  int max_lg = 0;
  for (std::size_t e = 0; e < E; ++e) {
    std::uint8_t c = cl.elem_rate_log2[e];
    for (const mesh::NodeId n : mesh.elem_nodes[e]) {
      c = std::min(c, cl.node_rate_log2[static_cast<std::size_t>(n)]);
    }
    cl.elem_class_log2[e] = c;
    max_lg = std::max(max_lg, static_cast<int>(cl.elem_rate_log2[e]));
  }
  cl.n_classes = max_lg + 1;

  cl.rate_histogram.assign(static_cast<std::size_t>(cl.n_classes), 0);
  cl.class_histogram.assign(static_cast<std::size_t>(cl.n_classes), 0);
  for (std::size_t e = 0; e < E; ++e) {
    ++cl.rate_histogram[cl.elem_rate_log2[e]];
    ++cl.class_histogram[cl.elem_class_log2[e]];
  }
  return cl;
}

double level_updates_saved_bound(const mesh::HexMesh& mesh, int max_rate) {
  if (mesh.n_elements() == 0) return 1.0;
  const int cap = cap_log2_of(max_rate);
  int max_level = 0;
  for (const std::uint8_t l : mesh.elem_level) {
    max_level = std::max(max_level, static_cast<int>(l));
  }
  // Uniform material: dt_e is proportional to h_e, so an element
  // (max_level - level) levels coarser than the finest runs at rate
  // 2^(max_level - level), capped.
  double updates = 0.0;
  for (const std::uint8_t l : mesh.elem_level) {
    const int lg = std::min(cap, max_level - static_cast<int>(l));
    updates += 1.0 / static_cast<double>(1 << lg);
  }
  return static_cast<double>(mesh.n_elements()) / updates;
}

}  // namespace quake::lts
