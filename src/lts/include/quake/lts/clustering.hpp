#pragma once

// Clustered local time stepping (LTS), part 1: the clustering pass.
//
// The mesh's whole premise (§2.2) is one-to-two orders of magnitude of
// wavelength contrast, yet a single global dt makes every element pay the
// CFL bound of the worst cell. Clustering computes the per-element stable
// step dt_e = cfl * h_e / vp_e, bins elements into power-of-two rate
// multiples of the base (global) step, and normalizes the binning so any
// two adjacent elements differ by at most one rate level — the clustered
// rate-2 scheme of Breuer & Heinecke's "Next-Generation Local Time
// Stepping for ADER-DG" (PAPERS.md), transplanted onto the explicit
// central-difference update. Adjacency includes coupling through
// hanging-node constraints: an element touching a hanging node is adjacent
// to every element touching one of that node's masters.
//
// Three derived cadences (all power-of-two multiples of the base step):
//   element *rate*  — the stability bin: rate * base_dt <= dt_e;
//   node rate       — update cadence: min rate over touching elements,
//                     folded across each constraint group (a hanging node
//                     and its masters share one cadence, which is what
//                     keeps hanging nodes time-consistent);
//   element *class* — compute cadence: min node rate over the element's
//                     nodes. Interior elements of a cluster compute at
//                     their own rate; elements on a rate interface
//                     recompute at the neighboring finer rate so every
//                     node update sees fresh partials (see docs/LTS.md).

#include <cstdint>
#include <vector>

#include "quake/mesh/hex_mesh.hpp"

namespace quake::lts {

struct LtsOptions {
  bool enabled = false;
  // Cap on the rate multipliers, clamped to the nearest power of two below.
  // max_rate = 1 degenerates to the global-dt scheme.
  int max_rate = 32;
};

struct Clustering {
  double base_dt = 0.0;  // the fine step every rate multiplies [s]
  int n_classes = 1;     // rate levels in use: rates 1 << c, c < n_classes

  std::vector<std::uint8_t> elem_rate_log2;   // stability bin (normalized)
  std::vector<std::uint8_t> elem_class_log2;  // compute cadence
  std::vector<std::uint8_t> node_rate_log2;   // update cadence

  std::vector<std::size_t> rate_histogram;    // elements per stability bin
  std::vector<std::size_t> class_histogram;   // elements per compute class

  [[nodiscard]] int max_rate() const { return 1 << (n_classes - 1); }

  // Whether compute class c runs at fine step k (k = 0 starts every class).
  [[nodiscard]] static bool class_active(int c, int k) {
    return (k & ((1 << c) - 1)) == 0;
  }

  // Element-kernel applications per fine step, as a fraction of the
  // global-dt scheme's (sum over elements of 1/class, over n_elements).
  [[nodiscard]] double predicted_update_fraction() const;
  // The headline ratio: global element updates over LTS element updates
  // (>= 1; the inverse of the fraction above).
  [[nodiscard]] double predicted_updates_saved() const;
};

// Per-element stable step cfl_fraction * h_e / vp_e. The minimum over
// elements is ElasticOperator::stable_dt(cfl_fraction).
[[nodiscard]] std::vector<double> element_stable_dt(const mesh::HexMesh& mesh,
                                                    double cfl_fraction);

// The full clustering pass: per-element stable dt, power-of-two binning
// against `base_dt` (pass the solver's actual fine step so the clustering
// cannot drift from it), +-1 adjacency normalization, and the histograms.
// `max_rate` caps the rate multipliers. Throws std::invalid_argument on a
// non-positive base_dt or max_rate.
[[nodiscard]] Clustering cluster_elements(const mesh::HexMesh& mesh,
                                          double base_dt, double cfl_fraction,
                                          int max_rate);

// Upper bound on the updates-saved ratio from the octree level histogram
// alone: assumes uniform material, where dt_e halves per level so the rate
// doubles per level of coarsening. The material-aware prediction is
// cluster_elements(...).predicted_updates_saved().
[[nodiscard]] double level_updates_saved_bound(const mesh::HexMesh& mesh,
                                               int max_rate);

}  // namespace quake::lts
