#pragma once

// Clustered local time stepping (LTS), part 2: the step scheduler.
//
// LtsSolver advances the same diagonalized central-difference recurrence as
// ExplicitSolver (eq. 2.4), but each node steps with its own power-of-two
// multiple of the base step: node n with rate p = 2^lg advances from u^k to
// u^{k+p} using dt_n = p * dt, and only at fine steps k divisible by p. The
// fine-step loop runs on the recursive two-level schedule of clustered LTS
// (Breuer & Heinecke, PAPERS.md): a rate-2^l window is two rate-2^(l-1)
// half-windows, with the coarser classes joining at the window head.
//
// Interface handling is conservative and buffered through the state pair
// (u_prev, u): a stale node holds its last update's bracket
// u_prev = u^{k0}, u = u^{k0+p}, so the time-k field every active element
// reads is the linear interpolant u^k ~ u_prev + theta (u - u_prev),
// theta = (k - k0)/p. Interpolation commutes with the hanging-node
// projection B (it is linear, and a constraint group shares one cadence by
// construction — see clustering.hpp), so hanging nodes stay time-consistent
// with their masters at every fine step. The scheduling invariant that makes
// the sweep correct: when a node updates at fine step k, every element
// touching it is active at k (the element's class divides the node's rate,
// which divides k), so its stiffness partials are complete even though ku
// is rebuilt from zero each fine step. docs/LTS.md walks the argument.
//
// With one class (a uniform-rate mesh, or max_rate = 1) every branch
// degenerates to the global scheme and the run is bitwise identical to
// ExplicitSolver — the anchor tested in lts_test. Multi-rate runs agree
// with global-dt up to the scheme's accuracy tier (summation order and
// coarse-node step size necessarily differ); Rayleigh damping, batching,
// and checkpointing are out of scope and rejected at construction.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "quake/lts/clustering.hpp"
#include "quake/solver/explicit_solver.hpp"

namespace quake::lts {

class LtsSolver {
 public:
  // Throws std::invalid_argument when the operator has Rayleigh damping
  // enabled (the off-diagonal damping term couples u^{k-1} across rates).
  LtsSolver(const solver::ElasticOperator& op, const solver::SolverOptions& opt,
            const LtsOptions& lts);

  void add_source(const solver::SourceModel* src) { sources_.push_back(src); }
  std::size_t add_receiver(std::array<double, 3> position);

  void set_initial_conditions(std::span<const double> u0,
                              std::span<const double> v0);
  void set_fixed_components(std::array<bool, 3> fixed) { fixed_ = fixed; }

  void run();

  [[nodiscard]] double dt() const { return dt_; }
  [[nodiscard]] int n_steps() const { return n_steps_; }
  [[nodiscard]] const Clustering& clustering() const { return cl_; }
  [[nodiscard]] const std::vector<solver::Receiver>& receivers() const {
    return receivers_;
  }
  [[nodiscard]] std::vector<double> receiver_component(std::size_t r,
                                                       int comp) const;
  // Displacement field interpolated at t = n_steps * dt (every node's
  // bracket closes there; with one class this is the raw final field).
  [[nodiscard]] std::span<const double> displacement() const {
    return u_final_;
  }

  // Measured element-kernel applications, and the headline ratio against
  // the global-dt scheme's n_steps * n_elements.
  [[nodiscard]] std::uint64_t element_updates() const {
    return element_updates_;
  }
  [[nodiscard]] std::uint64_t global_element_updates() const {
    return static_cast<std::uint64_t>(n_steps_) *
           static_cast<std::uint64_t>(cl_.elem_class_log2.size());
  }
  [[nodiscard]] double updates_saved_ratio() const {
    return element_updates_ > 0
               ? static_cast<double>(global_element_updates()) /
                     static_cast<double>(element_updates_)
               : 1.0;
  }
  [[nodiscard]] double elapsed_seconds() const { return elapsed_; }

 private:
  void substep(int k);
  // The recursive two-level schedule: a level-l window is two level-(l-1)
  // half-windows; level 0 is one fine step.
  void advance_window(int level, int k0);
  void gather_now(int k);
  void interpolate_at(int k_target, std::vector<double>& out) const;

  const solver::ElasticOperator* op_;
  double dt_ = 0.0;
  int n_steps_ = 0;
  std::array<bool, 3> fixed_{false, false, false};
  Clustering cl_;

  // Per-class sweep lists (ascending element / boundary-face indices).
  std::vector<std::vector<mesh::ElemId>> elems_of_class_;
  std::vector<std::vector<std::int32_t>> faces_of_class_;
  // Per-rate node and constraint-group lists (by node_rate_log2).
  std::vector<std::vector<mesh::NodeId>> nodes_of_rate_;
  std::vector<std::vector<std::int32_t>> cons_of_rate_;
  // Per-dof update coefficients for dt_n = 2^lg * dt (ldexp: exact).
  std::vector<double> dtn_, dt2n_, hdtn_, inv_lhs_;

  std::vector<const solver::SourceModel*> sources_;
  std::vector<solver::Receiver> receivers_;

  std::vector<double> u_, u_prev_, un_, f_, ku_, u_final_;
  std::uint64_t element_updates_ = 0;
  double elapsed_ = 0.0;
};

}  // namespace quake::lts
