#include "quake/lts/lts_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "quake/obs/obs.hpp"
#include "quake/util/timer.hpp"

namespace quake::lts {

LtsSolver::LtsSolver(const solver::ElasticOperator& op,
                     const solver::SolverOptions& opt, const LtsOptions& lts)
    : op_(&op) {
  if (op.options().rayleigh) {
    throw std::invalid_argument(
        "LtsSolver: Rayleigh damping is not supported (the off-diagonal "
        "stiffness-damping term couples u^{k-1} across rates)");
  }
  dt_ = opt.dt > 0.0 ? opt.dt : op.stable_dt(opt.cfl_fraction);
  if (!(dt_ > 0.0) || !(opt.t_end > 0.0)) {
    throw std::invalid_argument("LtsSolver: bad dt or t_end");
  }
  n_steps_ = static_cast<int>(std::ceil(opt.t_end / dt_));

  const mesh::HexMesh& mesh = op.mesh();
  cl_ = cluster_elements(mesh, dt_, opt.cfl_fraction,
                         lts.enabled ? lts.max_rate : 1);

  // Per-class / per-rate sweep lists, ascending so the full single-class
  // lists reproduce the global scheme's pack alignment bitwise.
  elems_of_class_.resize(static_cast<std::size_t>(cl_.n_classes));
  faces_of_class_.resize(static_cast<std::size_t>(cl_.n_classes));
  nodes_of_rate_.resize(static_cast<std::size_t>(cl_.n_classes));
  cons_of_rate_.resize(static_cast<std::size_t>(cl_.n_classes));
  for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
    elems_of_class_[cl_.elem_class_log2[e]].push_back(
        static_cast<mesh::ElemId>(e));
  }
  for (std::size_t fi = 0; fi < mesh.boundary_faces.size(); ++fi) {
    const std::size_t e =
        static_cast<std::size_t>(mesh.boundary_faces[fi].elem);
    faces_of_class_[cl_.elem_class_log2[e]].push_back(
        static_cast<std::int32_t>(fi));
  }
  for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
    nodes_of_rate_[cl_.node_rate_log2[n]].push_back(
        static_cast<mesh::NodeId>(n));
  }
  for (std::size_t ci = 0; ci < mesh.constraints.size(); ++ci) {
    const std::size_t h =
        static_cast<std::size_t>(mesh.constraints[ci].node);
    cons_of_rate_[cl_.node_rate_log2[h]].push_back(
        static_cast<std::int32_t>(ci));
  }

  // Per-dof coefficients of the eq. 2.4 recurrence at the node's own step
  // dt_n = 2^lg * dt. ldexp is exact, and at lg = 0 yields dt itself, so
  // the single-class coefficients match ExplicitSolver's bitwise.
  const std::size_t nd = op.n_dofs();
  dtn_.assign(nd, 0.0);
  dt2n_.assign(nd, 0.0);
  hdtn_.assign(nd, 0.0);
  inv_lhs_.assign(nd, 0.0);
  const auto mass = op.lumped_mass();
  const auto am = op.alpha_mass();
  const auto bk = op.beta_k_diag();
  const auto cab = op.cab_diag();
  for (std::size_t d = 0; d < nd; ++d) {
    const double dtn =
        std::ldexp(dt_, static_cast<int>(cl_.node_rate_log2[d / 3]));
    dtn_[d] = dtn;
    dt2n_[d] = dtn * dtn;
    hdtn_[d] = 0.5 * dtn;
    const double lhs = mass[d] + 0.5 * dtn * (am[d] + bk[d] + cab[d]);
    inv_lhs_[d] = lhs > 0.0 ? 1.0 / lhs : 0.0;  // hanging dofs have zero mass
  }

  u_.assign(nd, 0.0);
  u_prev_.assign(nd, 0.0);
  un_.assign(nd, 0.0);
  f_.assign(nd, 0.0);
  ku_.assign(nd, 0.0);
  u_final_.assign(nd, 0.0);
}

std::size_t LtsSolver::add_receiver(std::array<double, 3> position) {
  solver::Receiver r;
  r.node = solver::nearest_node(op_->mesh(), position);
  receivers_.push_back(std::move(r));
  return receivers_.size() - 1;
}

void LtsSolver::set_initial_conditions(std::span<const double> u0,
                                       std::span<const double> v0) {
  const std::size_t nd = op_->n_dofs();
  if (u0.size() != nd || v0.size() != nd) {
    throw std::invalid_argument("set_initial_conditions: bad sizes");
  }
  std::copy(u0.begin(), u0.end(), u_.begin());
  op_->expand_constraints(u_);
  // Second-order start per node: u^{-p} = u0 - dt_n v0 + dt_n^2/2 a0 (the
  // bracket opens one whole node-step before t = 0).
  std::fill(ku_.begin(), ku_.end(), 0.0);
  op_->apply_stiffness(u_, ku_, {});
  op_->accumulate_constraints(ku_);
  std::fill(f_.begin(), f_.end(), 0.0);
  for (const solver::SourceModel* s : sources_) s->add_forces(0.0, f_);
  op_->accumulate_constraints(f_);
  const auto mass = op_->lumped_mass();
  for (std::size_t d = 0; d < nd; ++d) {
    const double a0 = mass[d] > 0.0 ? (f_[d] - ku_[d]) / mass[d] : 0.0;
    u_prev_[d] = u_[d] - dtn_[d] * v0[d] + 0.5 * dtn_[d] * dtn_[d] * a0;
  }
  op_->expand_constraints(u_prev_);
}

void LtsSolver::gather_now(int k) {
  // The time-k field: an active node's u is exactly u^k; a stale node's
  // bracket (u_prev = u^{k0}, u = u^{k0+p}) interpolates linearly. theta's
  // numerator and denominator are exact small integers.
  const std::size_t N = op_->mesh().n_nodes();
  for (std::size_t n = 0; n < N; ++n) {
    const int p = 1 << cl_.node_rate_log2[n];
    const int m = k & (p - 1);
    const std::size_t b = 3 * n;
    if (m == 0) {
      un_[b] = u_[b];
      un_[b + 1] = u_[b + 1];
      un_[b + 2] = u_[b + 2];
    } else {
      const double theta = static_cast<double>(m) / static_cast<double>(p);
      for (int c = 0; c < 3; ++c) {
        un_[b + static_cast<std::size_t>(c)] =
            u_prev_[b + static_cast<std::size_t>(c)] +
            theta * (u_[b + static_cast<std::size_t>(c)] -
                     u_prev_[b + static_cast<std::size_t>(c)]);
      }
    }
  }
}

void LtsSolver::interpolate_at(int k_target, std::vector<double>& out) const {
  // Every node's open bracket after the last executed substep covers
  // k_target = n_steps (k0 + p >= n_steps by p | k0, k0 <= n_steps - 1).
  const int k_last = n_steps_ - 1;
  const std::size_t N = op_->mesh().n_nodes();
  for (std::size_t n = 0; n < N; ++n) {
    const int p = 1 << cl_.node_rate_log2[n];
    const int k0 = k_last - (k_last & (p - 1));
    const std::size_t b = 3 * n;
    if (k_target == k0 + p) {
      out[b] = u_[b];
      out[b + 1] = u_[b + 1];
      out[b + 2] = u_[b + 2];
    } else {
      const double theta =
          static_cast<double>(k_target - k0) / static_cast<double>(p);
      for (int c = 0; c < 3; ++c) {
        out[b + static_cast<std::size_t>(c)] =
            u_prev_[b + static_cast<std::size_t>(c)] +
            theta * (u_[b + static_cast<std::size_t>(c)] -
                     u_prev_[b + static_cast<std::size_t>(c)]);
      }
    }
  }
}

void LtsSolver::substep(int k) {
  const double t_k = k * dt_;
  const auto mass = op_->lumped_mass();
  const auto am = op_->alpha_mass();
  const auto cab = op_->cab_diag();

  gather_now(k);

  {
    QUAKE_OBS_SCOPE("source");
    std::fill(f_.begin(), f_.end(), 0.0);
    for (const solver::SourceModel* s : sources_) s->add_forces(t_k, f_);
    op_->accumulate_constraints(f_);
  }

  // Stiffness of the active classes only. ku is rebuilt from zero, which is
  // complete at every node updating this step: the node's rate divides k,
  // so every element touching it (class <= rate, class | rate) is active.
  std::fill(ku_.begin(), ku_.end(), 0.0);
  std::uint64_t updates = 0;
  for (int c = 0; c < cl_.n_classes; ++c) {
    if (!Clustering::class_active(c, k)) continue;
    const auto& elems = elems_of_class_[static_cast<std::size_t>(c)];
    op_->apply_stiffness_subset(
        elems, faces_of_class_[static_cast<std::size_t>(c)], un_, ku_, {});
    updates += elems.size();
  }
  op_->accumulate_constraints(ku_);
  element_updates_ += updates;
  obs::counter_add("lts/element_updates",
                   static_cast<std::int64_t>(updates));

  QUAKE_OBS_SCOPE("update");  // eq. 2.4 at dt_n, active rates only
  for (int lg = 0; lg < cl_.n_classes; ++lg) {
    if (!Clustering::class_active(lg, k)) continue;
    for (const mesh::NodeId node : nodes_of_rate_[static_cast<std::size_t>(lg)]) {
      const std::size_t b = 3 * static_cast<std::size_t>(node);
      for (std::size_t d = b; d < b + 3; ++d) {
        const double old_u = u_[d];
        const double rhs = 2.0 * mass[d] * u_[d] - dt2n_[d] * ku_[d] +
                           dt2n_[d] * f_[d] +
                           (hdtn_[d] * am[d] - mass[d]) * u_prev_[d] +
                           hdtn_[d] * cab[d] * u_prev_[d];
        u_prev_[d] = old_u;
        u_[d] = rhs * inv_lhs_[d];
      }
    }
    // Close the hanging brackets of this cadence: u_prev keeps the old
    // (time-k) expanded value, u gets the masters' fresh combination —
    // masters share the group's cadence, so they updated above.
    for (const std::int32_t ci : cons_of_rate_[static_cast<std::size_t>(lg)]) {
      const mesh::Constraint& c =
          op_->mesh().constraints[static_cast<std::size_t>(ci)];
      for (int comp = 0; comp < 3; ++comp) {
        double v = 0.0;
        for (int m = 0; m < c.n_masters; ++m) {
          v += c.weights[static_cast<std::size_t>(m)] *
               u_[3 * static_cast<std::size_t>(
                        c.masters[static_cast<std::size_t>(m)]) +
                  static_cast<std::size_t>(comp)];
        }
        u_[3 * static_cast<std::size_t>(c.node) +
           static_cast<std::size_t>(comp)] = v;
      }
    }
    if (fixed_[0] || fixed_[1] || fixed_[2]) {
      for (const mesh::NodeId node :
           nodes_of_rate_[static_cast<std::size_t>(lg)]) {
        for (int c = 0; c < 3; ++c) {
          if (fixed_[static_cast<std::size_t>(c)]) {
            u_[3 * static_cast<std::size_t>(node) +
               static_cast<std::size_t>(c)] = 0.0;
          }
        }
      }
    }
  }

  // Receivers sample t_{k+1}; a rate-1 node reads u directly (bitwise the
  // global scheme's recording), a coarse node interpolates its bracket.
  for (solver::Receiver& r : receivers_) {
    const std::size_t n = static_cast<std::size_t>(r.node);
    const int p = 1 << cl_.node_rate_log2[n];
    const int k0 = k - (k & (p - 1));
    const std::size_t b = 3 * n;
    if (k + 1 == k0 + p) {
      r.u.push_back({u_[b], u_[b + 1], u_[b + 2]});
    } else {
      const double theta =
          static_cast<double>(k + 1 - k0) / static_cast<double>(p);
      std::array<double, 3> s;
      for (int c = 0; c < 3; ++c) {
        const std::size_t d = b + static_cast<std::size_t>(c);
        s[static_cast<std::size_t>(c)] =
            u_prev_[d] + theta * (u_[d] - u_prev_[d]);
      }
      r.u.push_back(s);
    }
  }
}

void LtsSolver::advance_window(int level, int k0) {
  if (k0 >= n_steps_) return;  // ragged tail of the last window
  if (level == 0) {
    substep(k0);
    return;
  }
  advance_window(level - 1, k0);
  advance_window(level - 1, k0 + (1 << (level - 1)));
}

void LtsSolver::run() {
  QUAKE_OBS_SCOPE("lts/run");
  util::Timer timer;
  obs::gauge_set("lts/n_classes", cl_.n_classes);
  const int W = 1 << (cl_.n_classes - 1);
  for (int k0 = 0; k0 < n_steps_; k0 += W) {
    advance_window(cl_.n_classes - 1, k0);
  }
  interpolate_at(n_steps_, u_final_);
  obs::gauge_set("lts/updates_saved_ratio", updates_saved_ratio());
  elapsed_ = timer.seconds();
}

std::vector<double> LtsSolver::receiver_component(std::size_t r,
                                                  int comp) const {
  const solver::Receiver& rec = receivers_.at(r);
  std::vector<double> out(rec.u.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rec.u[i][static_cast<std::size_t>(comp)];
  }
  return out;
}

}  // namespace quake::lts
