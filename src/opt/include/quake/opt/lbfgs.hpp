#pragma once

// Limited-memory BFGS inverse-Hessian operator, used as the reduced-Hessian
// preconditioner of the Gauss-Newton-CG inversion (§3.1, after Morales &
// Nocedal): curvature pairs (s, y) harvested from CG iterations (or from
// Frankel warm-up sweeps) define an approximation of H^{-1} applied by the
// classic two-loop recursion.

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

namespace quake::opt {

class LbfgsOperator {
 public:
  explicit LbfgsOperator(std::size_t dim, std::size_t max_pairs = 10)
      : dim_(dim), max_pairs_(max_pairs) {}

  // Adds a curvature pair; ignored unless s^T y > 0 (maintains positive
  // definiteness). Oldest pairs are discarded beyond capacity.
  void add_pair(std::span<const double> s, std::span<const double> y);

  // out = H^{-1}_approx * v (two-loop recursion). With no stored pairs this
  // is gamma * v (gamma from the most recent accepted pair, else 1).
  void apply(std::span<const double> v, std::span<double> out) const;

  [[nodiscard]] std::size_t n_pairs() const { return pairs_.size(); }
  [[nodiscard]] std::size_t dim() const { return dim_; }

  void clear() { pairs_.clear(); gamma_ = 1.0; }

 private:
  struct Pair {
    std::vector<double> s, y;
    double rho;  // 1 / (y^T s)
  };
  std::size_t dim_;
  std::size_t max_pairs_;
  std::deque<Pair> pairs_;
  double gamma_ = 1.0;  // initial scaling (y^T s / y^T y of newest pair)
};

}  // namespace quake::opt
