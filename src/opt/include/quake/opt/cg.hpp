#pragma once

// Matrix-free preconditioned conjugate gradients — the inner (linear) solver
// of the multiscale Gauss-Newton-CG inversion algorithm (§3.1). The
// operator and preconditioner are callbacks; every Hessian application in
// the inversion costs one incremental forward plus one incremental adjoint
// wave solve, so iteration counts are the currency Table 3.1 reports.

#include <functional>
#include <span>

namespace quake::opt {

// Applies the operator, ACCUMULATING into a pre-zeroed output buffer.
using LinOp = std::function<void(std::span<const double>, std::span<double>)>;

// Receives the (s, y) = (alpha p, alpha A p) curvature pair of each CG
// iteration — exactly the pairs the Morales-Nocedal L-BFGS preconditioner
// harvests.
using PairCollector =
    std::function<void(std::span<const double>, std::span<const double>)>;

struct CgOptions {
  int max_iterations = 100;
  double rel_tolerance = 1e-2;  // on the preconditioned residual norm
};

struct CgResult {
  int iterations = 0;
  double initial_residual = 0.0;
  double final_residual = 0.0;
  bool converged = false;
  // True when CG detected a direction of non-positive curvature and stopped
  // (returning the best iterate so far) — the standard truncated-Newton
  // safeguard.
  bool hit_negative_curvature = false;
};

// Solves A x = b with initial guess x (overwritten). `precond` applies an
// approximation of A^{-1}; pass nullptr for unpreconditioned CG.
CgResult conjugate_gradient(const LinOp& apply_a, std::span<const double> b,
                            std::span<double> x, const CgOptions& options,
                            const LinOp* precond = nullptr,
                            const PairCollector* collect = nullptr);

}  // namespace quake::opt
