#pragma once

// Armijo backtracking line search — the globalization of the Gauss-Newton
// iteration (§3.1, after Nocedal & Wright).

#include <functional>

namespace quake::opt {

struct ArmijoOptions {
  double c1 = 1e-4;          // sufficient-decrease constant
  double backtrack = 0.5;    // step shrink factor
  double alpha0 = 1.0;       // initial step
  int max_trials = 25;
};

struct ArmijoResult {
  double alpha = 0.0;   // accepted step (0 if the search failed)
  double phi = 0.0;     // objective at the accepted step
  int evaluations = 0;  // number of phi evaluations
  bool success = false;
};

// phi(alpha) evaluates the objective along the direction; phi0 and dphi0
// are the value and directional derivative at alpha = 0 (dphi0 must be
// negative for a descent direction).
ArmijoResult armijo_backtracking(const std::function<double(double)>& phi,
                                 double phi0, double dphi0,
                                 const ArmijoOptions& options);

}  // namespace quake::opt
