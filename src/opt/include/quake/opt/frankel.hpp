#pragma once

// Frankel's two-step (second-order Richardson) stationary iteration for SPD
// systems. The paper initializes its L-BFGS reduced-Hessian preconditioner
// with several Frankel sweeps on the reduced system (§3.1, ref. Axelsson);
// each sweep also yields an (s, y) curvature pair that seeds the L-BFGS
// operator.

#include <span>

#include "quake/opt/cg.hpp"
#include "quake/opt/lbfgs.hpp"

namespace quake::opt {

struct FrankelOptions {
  int sweeps = 5;
  // Eigenvalue bounds of A used for the optimal parameters; when
  // lambda_max <= 0 it is estimated by power iteration.
  double lambda_min = 0.0;
  double lambda_max = 0.0;
  int power_iterations = 12;
};

// Estimates the largest eigenvalue of SPD operator A by power iteration
// (deterministic start vector).
double estimate_lambda_max(const LinOp& apply_a, std::size_t dim,
                           int iterations);

// Runs Frankel two-step iterations on A x = b starting from x (updated in
// place). When `seed` is non-null, each sweep's (s = x_{k+1} - x_k,
// y = A s) pair is fed to the L-BFGS operator.
void frankel_two_step(const LinOp& apply_a, std::span<const double> b,
                      std::span<double> x, const FrankelOptions& options,
                      LbfgsOperator* seed);

}  // namespace quake::opt
