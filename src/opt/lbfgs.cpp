#include "quake/opt/lbfgs.hpp"

#include <stdexcept>

#include "quake/util/stats.hpp"

namespace quake::opt {

void LbfgsOperator::add_pair(std::span<const double> s,
                             std::span<const double> y) {
  if (s.size() != dim_ || y.size() != dim_) {
    throw std::invalid_argument("LbfgsOperator::add_pair: bad sizes");
  }
  const double sy = util::dot(s, y);
  if (!(sy > 0.0)) return;  // reject non-positive curvature
  const double yy = util::dot(y, y);
  Pair p;
  p.s.assign(s.begin(), s.end());
  p.y.assign(y.begin(), y.end());
  p.rho = 1.0 / sy;
  pairs_.push_back(std::move(p));
  if (pairs_.size() > max_pairs_) pairs_.pop_front();
  if (yy > 0.0) gamma_ = sy / yy;
}

void LbfgsOperator::apply(std::span<const double> v,
                          std::span<double> out) const {
  if (v.size() != dim_ || out.size() != dim_) {
    throw std::invalid_argument("LbfgsOperator::apply: bad sizes");
  }
  std::vector<double> q(v.begin(), v.end());
  std::vector<double> alpha(pairs_.size());
  for (std::size_t i = pairs_.size(); i-- > 0;) {
    const Pair& p = pairs_[i];
    alpha[i] = p.rho * util::dot(p.s, q);
    for (std::size_t j = 0; j < dim_; ++j) q[j] -= alpha[i] * p.y[j];
  }
  for (std::size_t j = 0; j < dim_; ++j) q[j] *= gamma_;
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    const Pair& p = pairs_[i];
    const double beta = p.rho * util::dot(p.y, q);
    for (std::size_t j = 0; j < dim_; ++j) {
      q[j] += (alpha[i] - beta) * p.s[j];
    }
  }
  for (std::size_t j = 0; j < dim_; ++j) out[j] += q[j];
}

}  // namespace quake::opt
