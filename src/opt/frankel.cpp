#include "quake/opt/frankel.hpp"

#include <cmath>
#include <vector>

#include "quake/util/stats.hpp"

namespace quake::opt {

double estimate_lambda_max(const LinOp& apply_a, std::size_t dim,
                           int iterations) {
  std::vector<double> v(dim), av(dim);
  // Deterministic non-degenerate start.
  for (std::size_t i = 0; i < dim; ++i) {
    v[i] = 1.0 + 0.37 * static_cast<double>(i % 7);
  }
  double lambda = 1.0;
  for (int it = 0; it < iterations; ++it) {
    std::fill(av.begin(), av.end(), 0.0);
    apply_a(v, av);
    const double n = util::norm_l2(av);
    if (n == 0.0) return 0.0;
    lambda = n / util::norm_l2(v);
    for (std::size_t i = 0; i < dim; ++i) v[i] = av[i] / n;
  }
  return lambda;
}

void frankel_two_step(const LinOp& apply_a, std::span<const double> b,
                      std::span<double> x, const FrankelOptions& options,
                      LbfgsOperator* seed) {
  const std::size_t n = b.size();
  double lmax = options.lambda_max;
  if (!(lmax > 0.0)) {
    // Power iteration underestimates; the two-step iteration diverges if any
    // eigenvalue exceeds the assumed bound, so inflate the estimate.
    lmax = 1.25 * estimate_lambda_max(apply_a, n, options.power_iterations);
    if (!(lmax > 0.0)) return;
  }
  const double lmin =
      options.lambda_min > 0.0 ? options.lambda_min : lmax * 1e-3;

  // Optimal two-step parameters for spectrum in [lmin, lmax]:
  //   x_{k+1} = x_k + omega (alpha r_k + (x_k - x_{k-1})),
  // with rho = (1 - sqrt(kappa^{-1})) / (1 + sqrt(kappa^{-1})) the
  // asymptotic rate (Axelsson, Iterative Solution Methods, ch. 5).
  const double kappa = lmax / lmin;
  const double srk = 1.0 / std::sqrt(kappa);
  const double rho = (1.0 - srk) / (1.0 + srk);
  const double omega = rho * rho;           // momentum coefficient
  const double alpha = (1.0 + omega) * 2.0 / (lmax + lmin);  // step size

  std::vector<double> r(n), x_prev(x.begin(), x.end()), ax(n);
  std::vector<double> s(n), y(n);

  for (int k = 0; k < options.sweeps; ++k) {
    std::fill(ax.begin(), ax.end(), 0.0);
    apply_a(x, ax);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ax[i];
    for (std::size_t i = 0; i < n; ++i) {
      const double x_new = x[i] + alpha * r[i] + omega * (x[i] - x_prev[i]);
      s[i] = x_new - x[i];
      x_prev[i] = x[i];
      x[i] = x_new;
    }
    if (seed != nullptr) {
      std::fill(y.begin(), y.end(), 0.0);
      apply_a(s, y);
      seed->add_pair(s, y);
    }
  }
}

}  // namespace quake::opt
