#include "quake/opt/linesearch.hpp"

#include <stdexcept>

namespace quake::opt {

ArmijoResult armijo_backtracking(const std::function<double(double)>& phi,
                                 double phi0, double dphi0,
                                 const ArmijoOptions& options) {
  if (dphi0 >= 0.0) {
    throw std::invalid_argument("armijo: not a descent direction");
  }
  ArmijoResult res;
  double alpha = options.alpha0;
  for (int t = 0; t < options.max_trials; ++t) {
    const double value = phi(alpha);
    ++res.evaluations;
    if (value <= phi0 + options.c1 * alpha * dphi0) {
      res.alpha = alpha;
      res.phi = value;
      res.success = true;
      return res;
    }
    alpha *= options.backtrack;
  }
  res.phi = phi0;
  return res;
}

}  // namespace quake::opt
