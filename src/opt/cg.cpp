#include "quake/opt/cg.hpp"

#include <cmath>
#include <vector>

#include "quake/util/stats.hpp"

namespace quake::opt {

CgResult conjugate_gradient(const LinOp& apply_a, std::span<const double> b,
                            std::span<double> x, const CgOptions& options,
                            const LinOp* precond, const PairCollector* collect) {
  const std::size_t n = b.size();
  std::vector<double> r(n), z(n), p(n), ap(n);

  // r = b - A x.
  std::fill(ap.begin(), ap.end(), 0.0);
  apply_a(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];

  auto apply_m = [&](std::span<const double> in, std::span<double> out) {
    if (precond != nullptr) {
      std::fill(out.begin(), out.end(), 0.0);
      (*precond)(in, out);
    } else {
      std::copy(in.begin(), in.end(), out.begin());
    }
  };

  apply_m(r, z);
  std::copy(z.begin(), z.end(), p.begin());
  double rz = util::dot(r, z);

  CgResult res;
  res.initial_residual = util::norm_l2(r);
  res.final_residual = res.initial_residual;
  if (res.initial_residual == 0.0) {
    res.converged = true;
    return res;
  }
  const double target = options.rel_tolerance * res.initial_residual;

  for (int it = 0; it < options.max_iterations; ++it) {
    std::fill(ap.begin(), ap.end(), 0.0);
    apply_a(p, ap);
    const double pap = util::dot(p, ap);
    if (pap <= 0.0) {
      res.hit_negative_curvature = true;
      break;
    }
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    if (collect != nullptr) {
      std::vector<double> s(n), ys(n);
      for (std::size_t i = 0; i < n; ++i) {
        s[i] = alpha * p[i];
        ys[i] = alpha * ap[i];
      }
      (*collect)(s, ys);
    }
    ++res.iterations;
    res.final_residual = util::norm_l2(r);
    if (res.final_residual <= target) {
      res.converged = true;
      break;
    }
    apply_m(r, z);
    const double rz_new = util::dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return res;
}

}  // namespace quake::opt
