#include "quake/obs/report.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace quake::obs {

std::vector<double> encode_report(const RankReport& report) {
  std::vector<double> out;
  const Registry& m = report.metrics;
  auto put_str = [&out](const std::string& s) {
    out.push_back(static_cast<double>(s.size()));
    for (char c : s) out.push_back(static_cast<double>(c));
  };
  out.push_back(static_cast<double>(report.rank));
  out.push_back(static_cast<double>(m.scopes.size()));
  for (const auto& [k, s] : m.scopes) {
    put_str(k);
    out.push_back(static_cast<double>(s.calls));
    out.push_back(s.seconds);
  }
  out.push_back(static_cast<double>(m.counters.size()));
  for (const auto& [k, v] : m.counters) {
    put_str(k);
    out.push_back(static_cast<double>(v));
  }
  out.push_back(static_cast<double>(m.gauges.size()));
  for (const auto& [k, v] : m.gauges) {
    put_str(k);
    out.push_back(v);
  }
  out.push_back(static_cast<double>(m.series.size()));
  for (const auto& [k, v] : m.series) {
    put_str(k);
    out.push_back(static_cast<double>(v.size()));
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

RankReport decode_report(std::span<const double> data) {
  std::size_t pos = 0;
  auto next = [&]() -> double {
    if (pos >= data.size()) {
      throw std::runtime_error("decode_report: truncated buffer");
    }
    return data[pos++];
  };
  auto next_count = [&]() -> std::size_t {
    const double v = next();
    if (!(v >= 0.0) || v > 1e12) {
      throw std::runtime_error("decode_report: bad count");
    }
    return static_cast<std::size_t>(v);
  };
  auto next_str = [&]() -> std::string {
    const std::size_t n = next_count();
    std::string s(n, '\0');
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = static_cast<char>(next());
    }
    return s;
  };

  RankReport r;
  r.rank = static_cast<int>(next());
  const std::size_t n_scopes = next_count();
  for (std::size_t i = 0; i < n_scopes; ++i) {
    std::string k = next_str();
    ScopeStats s;
    s.calls = static_cast<std::uint64_t>(next());
    s.seconds = next();
    r.metrics.scopes.emplace(std::move(k), s);
  }
  const std::size_t n_counters = next_count();
  for (std::size_t i = 0; i < n_counters; ++i) {
    std::string k = next_str();
    r.metrics.counters.emplace(std::move(k),
                               static_cast<std::int64_t>(next()));
  }
  const std::size_t n_gauges = next_count();
  for (std::size_t i = 0; i < n_gauges; ++i) {
    std::string k = next_str();
    r.metrics.gauges.emplace(std::move(k), next());
  }
  const std::size_t n_series = next_count();
  for (std::size_t i = 0; i < n_series; ++i) {
    std::string k = next_str();
    const std::size_t n = next_count();
    std::vector<double> v(n);
    for (std::size_t j = 0; j < n; ++j) v[j] = next();
    r.metrics.series.emplace(std::move(k), std::move(v));
  }
  return r;
}

MergedReport merge_reports(std::span<const RankReport> reports) {
  MergedReport out;
  out.n_ranks = static_cast<int>(reports.size());
  if (reports.empty()) return out;
  const double n = static_cast<double>(reports.size());

  // Union of keys first, then reduce treating missing entries as zero.
  for (const RankReport& r : reports) {
    for (const auto& [k, s] : r.metrics.scopes) out.scopes[k];
    for (const auto& [k, v] : r.metrics.counters) out.counters[k];
    for (const auto& [k, v] : r.metrics.gauges) out.gauges[k];
  }
  auto reduce = [&](auto& summary_map, auto value_of) {
    for (auto& [key, summary] : summary_map) {
      double mn = std::numeric_limits<double>::infinity();
      double mx = -std::numeric_limits<double>::infinity();
      double sum = 0.0;
      for (const RankReport& r : reports) {
        const double v = value_of(r, key);
        mn = std::min(mn, v);
        mx = std::max(mx, v);
        sum += v;
      }
      summary.min = mn;
      summary.max = mx;
      summary.sum = sum;
      // The accumulation can round sum/n just outside [min, max] when every
      // rank reports the same value; the mean of samples lies inside.
      summary.mean = std::clamp(sum / n, mn, mx);
    }
  };
  for (auto& [key, sc] : out.scopes) {
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    double sum = 0.0;
    for (const RankReport& r : reports) {
      const auto it = r.metrics.scopes.find(key);
      const double v = it != r.metrics.scopes.end() ? it->second.seconds : 0.0;
      if (it != r.metrics.scopes.end()) sc.calls_total += it->second.calls;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
      sum += v;
    }
    sc.seconds = {mn, std::clamp(sum / n, mn, mx), mx, sum};
  }
  reduce(out.counters, [](const RankReport& r, const std::string& key) {
    const auto it = r.metrics.counters.find(key);
    return it != r.metrics.counters.end() ? static_cast<double>(it->second)
                                          : 0.0;
  });
  reduce(out.gauges, [](const RankReport& r, const std::string& key) {
    const auto it = r.metrics.gauges.find(key);
    return it != r.metrics.gauges.end() ? it->second : 0.0;
  });
  return out;
}

}  // namespace quake::obs
