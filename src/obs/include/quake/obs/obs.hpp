#pragma once

// quake::obs — solver telemetry (see docs/OBSERVABILITY.md).
//
// Hierarchical scoped timers, named counters, gauges, and per-iteration
// series, accumulated into a per-thread Registry. The layer is compiled in
// unconditionally but disabled by default: every instrumentation call first
// reads one relaxed atomic flag and returns, so a disabled build performs no
// allocation, no locking, and no string work on the hot path (the
// bench_micro element-kernel loop shows no measurable regression).
//
// Threading model: each thread records into the Registry installed on it by
// ScopedRegistry (the SPMD parallel solver installs one per rank thread);
// threads with no installed registry fall back to a process-wide default.
// A Registry must only be read after the threads recording into it have
// finished (or from the recording thread itself) — there is no internal
// locking, exactly like MPI-rank-local accounting.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace quake::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

// Process-wide master switch. Off by default; benches, examples, and tests
// that want telemetry turn it on explicitly.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

// Accumulated wall-clock for one scope path. Timings are *inclusive*: time
// spent in nested scopes is also counted in every enclosing scope.
struct ScopeStats {
  std::uint64_t calls = 0;
  double seconds = 0.0;
};

// A bag of metrics. Scope keys are full slash-joined paths
// ("step/exchange/recv"); counter/gauge/series keys are flat names.
class Registry {
 public:
  std::map<std::string, ScopeStats> scopes;
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, std::vector<double>> series;

  void clear();
  [[nodiscard]] bool empty() const {
    return scopes.empty() && counters.empty() && gauges.empty() &&
           series.empty();
  }

  // Element-wise accumulate `other` into this registry (scope times and
  // counters add; gauges take other's value; series concatenate).
  void merge_from(const Registry& other);
};

// The process-wide fallback registry (threads without an installed one).
Registry& default_registry() noexcept;

// The registry this thread currently records into.
Registry& current() noexcept;

// RAII: install `r` as the calling thread's registry for the object's
// lifetime (restores the previous installation on destruction).
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry& r) noexcept;
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* prev_;
};

namespace detail {
// Slow paths, called only when enabled.
void scope_enter(const char* name, std::size_t* prev_len);
void scope_exit(std::size_t prev_len, double seconds);
void counter_add_slow(const char* name, std::int64_t v);
void gauge_set_slow(const char* name, double v);
void series_append_slow(const char* name, double v);
void scope_record_slow(const char* path, double seconds);
}  // namespace detail

// Adds `v` to the named counter of this thread's registry.
inline void counter_add(const char* name, std::int64_t v) {
  if (enabled()) detail::counter_add_slow(name, v);
}

// Sets the named gauge (last-write-wins point-in-time value).
inline void gauge_set(const char* name, double v) {
  if (enabled()) detail::gauge_set_slow(name, v);
}

// Appends one sample to the named series (e.g. one value per Gauss-Newton
// outer iteration).
inline void series_append(const char* name, double v) {
  if (enabled()) detail::series_append_slow(name, v);
}

// Records one completed interval under an *absolute* scope path, ignoring
// this thread's current scope nesting. For phase costs that logically
// belong to another subsystem's scope tree than the one they are measured
// in — e.g. the recovery donation-absorb wait ("recover/donate/wait"),
// which is timed inside the step loop's checkpoint scope but reported next
// to the other recover/* phases.
inline void scope_record(const char* path, double seconds) {
  if (enabled()) detail::scope_record_slow(path, seconds);
}

// RAII hierarchical timer; use through QUAKE_OBS_SCOPE. Nesting is tracked
// per thread: a scope opened inside another accumulates under the joined
// path "outer/inner".
class ScopeTimer {
 public:
  explicit ScopeTimer(const char* name) noexcept {
    if (!enabled()) return;
    active_ = true;
    detail::scope_enter(name, &prev_len_);
    t0_ = std::chrono::steady_clock::now();
  }
  ~ScopeTimer() {
    if (!active_) return;
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
            .count();
    detail::scope_exit(prev_len_, dt);
  }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  bool active_ = false;
  std::size_t prev_len_ = 0;
  std::chrono::steady_clock::time_point t0_{};
};

#define QUAKE_OBS_CONCAT_IMPL(a, b) a##b
#define QUAKE_OBS_CONCAT(a, b) QUAKE_OBS_CONCAT_IMPL(a, b)

// Times the enclosing block under `name` (a string literal; may itself
// contain '/' separators, e.g. QUAKE_OBS_SCOPE("step/exchange")).
#define QUAKE_OBS_SCOPE(name) \
  ::quake::obs::ScopeTimer QUAKE_OBS_CONCAT(quake_obs_scope_, __LINE__)(name)

}  // namespace quake::obs
