#pragma once

// MetricsSink — machine-readable bench reports. A sink collects one JSON
// row per experiment configuration and writes the whole set as a
// schema-versioned envelope ("quake.bench/1", documented in
// docs/OBSERVABILITY.md and validated by tools/check_bench_schema):
//
//   {
//     "schema": "quake.bench/1",
//     "bench":  "table2_1",
//     "rows": [
//       {
//         "params":  { ... experiment configuration (scalars) ... },
//         "metrics": { ... headline numbers (scalars)          ... },
//         "ranks":   { per-phase scope times and counters,
//                      min/mean/max across ranks               },   // optional
//         "series":  { name: [per-iteration values...] }            // optional
//       }, ...
//     ]
//   }
//
// Writers go through util::write_text_file, so disk-full and short writes
// surface as exceptions instead of truncated reports.

#include <string>
#include <vector>

#include "quake/obs/json.hpp"
#include "quake/obs/report.hpp"

namespace quake::obs {

// {"n_ranks", "scopes": {path: {"calls", "seconds": {min,mean,max,sum}}},
//  "counters": {name: {min,mean,max,sum}}, "gauges": {...}}
Json to_json(const MergedReport& m);

// {"scopes": {path: {"calls","seconds"}}, "counters": {...}, "gauges": {...},
//  "series": {name: [...]}} — one thread/rank, unmerged.
Json to_json(const Registry& r);

class MetricsSink {
 public:
  explicit MetricsSink(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  // Appends an empty row object; fill it via set("params", ...) etc.
  Json& new_row();

  [[nodiscard]] std::size_t n_rows() const { return rows_.size(); }

  // The full envelope (schema/bench/rows).
  [[nodiscard]] Json envelope() const;

  // Writes the envelope as JSON; throws std::runtime_error on I/O failure.
  void write_json(const std::string& path) const;

  // Flat CSV companion: one line per row, columns = the union of scalar
  // "params" and "metrics" keys (first-seen order), prefixed with
  // "params." / "metrics."; non-scalar members are skipped.
  void write_csv(const std::string& path) const;

 private:
  std::string bench_;
  std::vector<Json> rows_;
};

}  // namespace quake::obs
