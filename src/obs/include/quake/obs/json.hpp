#pragma once

// Minimal JSON value with dump/parse — just enough for the BENCH_*.json
// reports and their schema checker (tools/check_bench_schema), keeping the
// repo dependency-free. Objects preserve insertion order so emitted reports
// are stable and diffable.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace quake::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}                    // NOLINT
  Json(double v) : type_(Type::kNumber), number_(v) {}              // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}                     // NOLINT
  Json(long v) : Json(static_cast<double>(v)) {}                    // NOLINT
  Json(long long v) : Json(static_cast<double>(v)) {}               // NOLINT
  Json(unsigned long v) : Json(static_cast<double>(v)) {}           // NOLINT
  Json(unsigned long long v) : Json(static_cast<double>(v)) {}      // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}                     // NOLINT

  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }

  // Object: appends (or overwrites) a member; returns *this for chaining.
  Json& set(std::string key, Json value);
  // Object: member lookup, nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const {
    return members_;
  }

  // Array append.
  void push_back(Json value);
  [[nodiscard]] const std::vector<Json>& items() const { return items_; }

  // Pretty-printed serialization (2-space indent), trailing newline.
  [[nodiscard]] std::string dump() const;

  // Parses `text`; on failure returns false and sets `error` (if given)
  // to a message with the offending byte offset.
  static bool parse(std::string_view text, Json* out,
                    std::string* error = nullptr);

 private:
  void dump_to(std::string& out, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                              // kArray
  std::vector<std::pair<std::string, Json>> members_;    // kObject
};

}  // namespace quake::obs
