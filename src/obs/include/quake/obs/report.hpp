#pragma once

// Per-rank metric reports and their across-rank summaries — the Table 2.1
// reduction: every rank snapshots its Registry into a RankReport, non-root
// ranks ship theirs to rank 0 as a flat double buffer (encode_report /
// decode_report — the only message type quake::par carries), and rank 0
// merges the set into min/mean/max-across-ranks summaries.

#include <span>
#include <vector>

#include "quake/obs/obs.hpp"

namespace quake::obs {

struct RankReport {
  int rank = 0;
  Registry metrics;
};

// Flattens a report into doubles for transport over par::Rank::send (keys
// are encoded one character per double; values verbatim). Counters survive
// the double round-trip exactly up to 2^53.
std::vector<double> encode_report(const RankReport& report);
RankReport decode_report(std::span<const double> data);

// min/mean/max over ranks; `sum` across ranks. A rank that never touched a
// key contributes 0 (the MPI-reduce-over-all-ranks convention), so e.g. a
// rank with no ghost exchange pulls the min to zero.
struct Summary {
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

struct ScopeSummary {
  std::uint64_t calls_total = 0;
  Summary seconds;
};

struct MergedReport {
  int n_ranks = 0;
  std::map<std::string, ScopeSummary> scopes;
  std::map<std::string, Summary> counters;
  std::map<std::string, Summary> gauges;
};

// Merges per-rank reports (series are rank-local diagnostics and are not
// summarized; read them from the individual RankReports).
MergedReport merge_reports(std::span<const RankReport> reports);

}  // namespace quake::obs
