#include "quake/obs/obs.hpp"

namespace quake::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

// Thread-local recording state. The path buffer keeps its capacity across
// scopes, so steady-state scope entry performs no allocation.
thread_local Registry* tls_registry = nullptr;
thread_local std::string tls_path;

}  // namespace

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

Registry& default_registry() noexcept {
  static Registry reg;
  return reg;
}

Registry& current() noexcept {
  return tls_registry != nullptr ? *tls_registry : default_registry();
}

void Registry::clear() {
  scopes.clear();
  counters.clear();
  gauges.clear();
  series.clear();
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [k, s] : other.scopes) {
    auto& dst = scopes[k];
    dst.calls += s.calls;
    dst.seconds += s.seconds;
  }
  for (const auto& [k, v] : other.counters) counters[k] += v;
  for (const auto& [k, v] : other.gauges) gauges[k] = v;
  for (const auto& [k, v] : other.series) {
    auto& dst = series[k];
    dst.insert(dst.end(), v.begin(), v.end());
  }
}

ScopedRegistry::ScopedRegistry(Registry& r) noexcept : prev_(tls_registry) {
  tls_registry = &r;
}

ScopedRegistry::~ScopedRegistry() { tls_registry = prev_; }

namespace detail {

void scope_enter(const char* name, std::size_t* prev_len) {
  *prev_len = tls_path.size();
  if (!tls_path.empty()) tls_path += '/';
  tls_path += name;
}

void scope_exit(std::size_t prev_len, double seconds) {
  ScopeStats& s = current().scopes[tls_path];
  ++s.calls;
  s.seconds += seconds;
  tls_path.resize(prev_len);
}

void counter_add_slow(const char* name, std::int64_t v) {
  current().counters[name] += v;
}

void gauge_set_slow(const char* name, double v) { current().gauges[name] = v; }

void series_append_slow(const char* name, double v) {
  current().series[name].push_back(v);
}

void scope_record_slow(const char* path, double seconds) {
  ScopeStats& s = current().scopes[path];
  ++s.calls;
  s.seconds += seconds;
}

}  // namespace detail

}  // namespace quake::obs
