#include "quake/obs/sink.hpp"

#include <cstdio>

#include "quake/util/io.hpp"

namespace quake::obs {

namespace {

Json summary_json(const Summary& s) {
  Json j = Json::object();
  j.set("min", s.min).set("mean", s.mean).set("max", s.max).set("sum", s.sum);
  return j;
}

}  // namespace

Json to_json(const MergedReport& m) {
  Json j = Json::object();
  j.set("n_ranks", m.n_ranks);
  Json scopes = Json::object();
  for (const auto& [path, sc] : m.scopes) {
    Json s = Json::object();
    s.set("calls", sc.calls_total);
    s.set("seconds", summary_json(sc.seconds));
    scopes.set(path, std::move(s));
  }
  j.set("scopes", std::move(scopes));
  Json counters = Json::object();
  for (const auto& [name, s] : m.counters) counters.set(name, summary_json(s));
  j.set("counters", std::move(counters));
  Json gauges = Json::object();
  for (const auto& [name, s] : m.gauges) gauges.set(name, summary_json(s));
  j.set("gauges", std::move(gauges));
  return j;
}

Json to_json(const Registry& r) {
  Json j = Json::object();
  Json scopes = Json::object();
  for (const auto& [path, s] : r.scopes) {
    Json sj = Json::object();
    sj.set("calls", s.calls);
    sj.set("seconds", s.seconds);
    scopes.set(path, std::move(sj));
  }
  j.set("scopes", std::move(scopes));
  Json counters = Json::object();
  for (const auto& [name, v] : r.counters) counters.set(name, v);
  j.set("counters", std::move(counters));
  Json gauges = Json::object();
  for (const auto& [name, v] : r.gauges) gauges.set(name, v);
  j.set("gauges", std::move(gauges));
  Json series = Json::object();
  for (const auto& [name, v] : r.series) {
    Json arr = Json::array();
    for (double x : v) arr.push_back(x);
    series.set(name, std::move(arr));
  }
  j.set("series", std::move(series));
  return j;
}

Json& MetricsSink::new_row() {
  rows_.push_back(Json::object());
  return rows_.back();
}

Json MetricsSink::envelope() const {
  Json root = Json::object();
  root.set("schema", "quake.bench/1");
  root.set("bench", bench_);
  Json rows = Json::array();
  for (const Json& r : rows_) rows.push_back(r);
  root.set("rows", std::move(rows));
  return root;
}

void MetricsSink::write_json(const std::string& path) const {
  util::write_text_file(path, envelope().dump());
}

void MetricsSink::write_csv(const std::string& path) const {
  // Column discovery: scalar members of "params" and "metrics", in
  // first-seen order across rows.
  std::vector<std::string> columns;
  auto discover = [&](const Json& row) {
    for (const char* section : {"params", "metrics"}) {
      const Json* obj = row.find(section);
      if (obj == nullptr || !obj->is_object()) continue;
      for (const auto& [k, v] : obj->members()) {
        if (v.is_array() || v.is_object()) continue;
        std::string col = std::string(section) + "." + k;
        bool seen = false;
        for (const auto& c : columns) {
          if (c == col) {
            seen = true;
            break;
          }
        }
        if (!seen) columns.push_back(std::move(col));
      }
    }
  };
  for (const Json& r : rows_) discover(r);

  std::string out;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    out += columns[i];
    out += i + 1 < columns.size() ? "," : "\n";
  }
  for (const Json& row : rows_) {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      const std::string& col = columns[i];
      const auto dot = col.find('.');
      const Json* section = row.find(col.substr(0, dot));
      const Json* v =
          section != nullptr ? section->find(col.substr(dot + 1)) : nullptr;
      if (v != nullptr) {
        switch (v->type()) {
          case Json::Type::kNumber: {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.9g", v->as_number());
            out += buf;
            break;
          }
          case Json::Type::kString: out += v->as_string(); break;
          case Json::Type::kBool: out += v->as_bool() ? "true" : "false"; break;
          default: break;
        }
      }
      out += i + 1 < columns.size() ? "," : "\n";
    }
  }
  util::write_text_file(path, out);
}

}  // namespace quake::obs
