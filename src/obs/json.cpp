#include "quake/obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace quake::obs {

Json& Json::set(std::string key, Json value) {
  type_ = Type::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::push_back(Json value) {
  type_ = Type::kArray;
  items_.push_back(std::move(value));
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no inf/nan; null keeps the file parseable
    return;
  }
  char buf[32];
  // Shortest representation that round-trips: try increasing precision.
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

void indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(2 * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, number_); break;
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      // Arrays of scalars stay on one line; arrays of containers wrap.
      bool scalars = true;
      for (const Json& v : items_) {
        if (v.is_array() || v.is_object()) scalars = false;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (!scalars) {
          out += '\n';
          indent(out, depth + 1);
        }
        items_[i].dump_to(out, depth + 1);
        if (i + 1 < items_.size()) out += scalars ? ", " : ",";
      }
      if (!scalars) {
        out += '\n';
        indent(out, depth);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        indent(out, depth + 1);
        append_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.dump_to(out, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += '\n';
      }
      indent(out, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0);
  out += '\n';
  return out;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                         peek() == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (at_end() || peek() != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool parse_string(std::string* out) {
    if (at_end() || peek() != '"') return fail("expected string");
    ++pos;
    out->clear();
    while (true) {
      if (at_end()) return fail("unterminated string");
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (at_end()) return fail("bad escape");
        char e = text[pos++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // Reports are ASCII; encode BMP code points as UTF-8.
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("bad escape");
        }
      } else {
        *out += c;
      }
    }
  }

  bool parse_value(Json* out, int depth) {
    if (depth > 64) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    const char c = peek();
    if (c == '{') {
      ++pos;
      *out = Json::object();
      skip_ws();
      if (!at_end() && peek() == '}') {
        ++pos;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        if (!consume(':')) return false;
        Json v;
        if (!parse_value(&v, depth + 1)) return false;
        out->set(std::move(key), std::move(v));
        skip_ws();
        if (at_end()) return fail("unterminated object");
        if (peek() == ',') {
          ++pos;
          continue;
        }
        if (peek() == '}') {
          ++pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      *out = Json::array();
      skip_ws();
      if (!at_end() && peek() == ']') {
        ++pos;
        return true;
      }
      while (true) {
        Json v;
        if (!parse_value(&v, depth + 1)) return false;
        out->push_back(std::move(v));
        skip_ws();
        if (at_end()) return fail("unterminated array");
        if (peek() == ',') {
          ++pos;
          continue;
        }
        if (peek() == ']') {
          ++pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return false;
      *out = Json(std::move(s));
      return true;
    }
    if (text.compare(pos, 4, "true") == 0) {
      pos += 4;
      *out = Json(true);
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      pos += 5;
      *out = Json(false);
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      pos += 4;
      *out = Json();
      return true;
    }
    // Number: copy the token out first (the view need not be
    // null-terminated, so strtod cannot run on it directly).
    std::size_t len = 0;
    while (pos + len < text.size()) {
      const char d = text[pos + len];
      if ((d >= '0' && d <= '9') || d == '+' || d == '-' || d == '.' ||
          d == 'e' || d == 'E') {
        ++len;
      } else {
        break;
      }
    }
    if (len == 0 || len >= 64) return fail("invalid token");
    char buf[64];
    text.copy(buf, len, pos);
    buf[len] = '\0';
    char* end = nullptr;
    const double v = std::strtod(buf, &end);
    if (end != buf + len) return fail("invalid number");
    pos += len;
    *out = Json(v);
    return true;
  }
};

}  // namespace

bool Json::parse(std::string_view text, Json* out, std::string* error) {
  Parser p{text, 0, {}};
  Json v;
  if (!p.parse_value(&v, 0)) {
    if (error != nullptr) *error = p.error;
    return false;
  }
  p.skip_ws();
  if (!p.at_end()) {
    if (error != nullptr) {
      *error = "trailing content at byte " + std::to_string(p.pos);
    }
    return false;
  }
  *out = std::move(v);
  return true;
}

}  // namespace quake::obs
