// The full production workflow of the paper, end to end on disk:
//
//   1. sample the ground model into a material database (the "CVM etree");
//   2. mesh it out of core (construct -> balance -> transform);
//   3. persist the element/node databases (the transform step's output);
//   4. reload the mesh — as a separate solver run would — and simulate a
//      rupture scenario in parallel, recording seismograms and snapshots.
//
// Every stage hands off through files, as in the paper's "mesh once,
// simulate many earthquakes" workflow.
//
//   ./pipeline [work_dir] [n_ranks]

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "quake/mesh/mesh_io.hpp"
#include "quake/mesh/meshgen.hpp"
#include "quake/par/parallel_solver.hpp"
#include "quake/par/partition.hpp"
#include "quake/solver/elastic_operator.hpp"
#include "quake/solver/explicit_solver.hpp"
#include "quake/solver/source.hpp"
#include "quake/solver/surface.hpp"
#include "quake/util/io.hpp"
#include "quake/util/timer.hpp"
#include "quake/vel/etree_model.hpp"

int main(int argc, char** argv) {
  using namespace quake;
  const std::string dir = argc > 1 ? argv[1] : "/tmp";
  const int n_ranks = argc > 2 ? std::atoi(argv[2]) : 4;
  const double extent = 16000.0;
  util::Timer timer;

  // -- 1. material database ---------------------------------------------
  const vel::BasinModel basin = vel::BasinModel::demo(extent);
  vel::EtreeModelOptions eopt;
  eopt.domain_size = extent;
  eopt.level = 6;
  const std::string cvm_path = dir + "/pipeline_cvm.etree";
  const std::size_t cvm_records = vel::build_etree_model(basin, eopt, cvm_path);
  std::printf("[1] material database: %zu octants at level %d (%.2f s)\n",
              cvm_records, eopt.level, timer.seconds());

  // -- 2. out-of-core meshing through the database ------------------------
  timer.reset();
  const vel::EtreeVelocityModel cvm(cvm_path, eopt);
  mesh::MeshOptions mopt;
  mopt.domain_size = extent;
  // Target the frequency the database's velocity floor supports.
  mopt.f_max = cvm.min_vs() / (8.0 * (extent / (1 << 6)));
  mopt.n_lambda = 8.0;
  mopt.min_level = 3;
  mopt.max_level = 6;
  const mesh::HexMesh meshed = mesh::generate_mesh_out_of_core(
      cvm, mopt, dir + "/pipeline_mesh.etree");
  std::printf("[2] meshed to %.2f Hz: %zu elements, %zu nodes, %zu hanging "
              "(%.2f s); CVM stats: %llu reads, %llu hits\n",
              mopt.f_max, meshed.n_elements(), meshed.n_nodes(),
              meshed.n_hanging(), timer.seconds(),
              static_cast<unsigned long long>(cvm.stats().page_reads),
              static_cast<unsigned long long>(cvm.stats().cache_hits));

  // -- 3. element/node databases -----------------------------------------
  timer.reset();
  const std::string mesh_db = dir + "/pipeline_meshdb";
  const auto db_stats = mesh::save_mesh(meshed, mesh_db);
  std::printf("[3] mesh databases: %zu element + %zu node records (%.2f s)\n",
              db_stats.element_records, db_stats.node_records,
              timer.seconds());

  // -- 4. reload and simulate ------------------------------------------
  timer.reset();
  const mesh::HexMesh mesh = mesh::load_mesh(mesh_db);
  std::printf("[4] reloaded mesh: %zu elements (%.2f s)\n", mesh.n_elements(),
              timer.seconds());

  solver::FaultSource::Spec fs;
  fs.y = 0.55 * extent;
  fs.x0 = 0.32 * extent;
  fs.x1 = 0.62 * extent;
  fs.z_top = 1000.0;
  fs.z_bot = 4000.0;
  fs.hypocenter = {0.35 * extent, 3200.0};
  fs.rupture_velocity = 2800.0;
  fs.rise_time = 1.2;
  fs.slip = 1.5;
  const solver::FaultSource source(mesh, fs);

  solver::OperatorOptions oopt;
  oopt.rayleigh = true;
  oopt.damping_f_min = 0.02;
  oopt.damping_f_max = std::max(0.1, mopt.f_max);
  solver::SolverOptions sopt;
  sopt.t_end = 10.0;
  sopt.cfl_fraction = 0.4;

  // Parallel run for the seismograms.
  timer.reset();
  const par::Partition part = par::partition_sfc(mesh, n_ranks);
  const solver::SourceModel* sources[] = {&source};
  const std::array<double, 3> rxs[] = {{0.70 * extent, 0.55 * extent, 0.0},
                                       {0.45 * extent, 0.40 * extent, 0.0}};
  const par::ParallelResult pr =
      par::run_parallel(mesh, part, oopt, sopt, sources, rxs);
  std::printf("[5] %d-rank simulation: %d steps, dt %.4f s (%.2f s wall)\n",
              n_ranks, pr.n_steps, pr.dt, timer.seconds());

  // Serial snapshot pass (same physics; writes the surface images).
  const solver::ElasticOperator op(mesh, oopt);
  solver::ExplicitSolver serial(op, sopt);
  serial.add_source(&source);
  solver::SurfaceRaster raster(mesh, 128);
  int snap = 0;
  serial.run(
      [&](int, double t, std::span<const double>, std::span<const double> v) {
        const auto mag = raster.velocity_magnitude(v);
        raster.update_peak(mag);
        char name[64];
        std::snprintf(name, sizeof name, "/pipeline_snap_%02d_t%04.1f.pgm",
                      snap++, t);
        raster.write_pgm(dir + name, mag, 0.0, 0.5);
      },
      std::max(1, serial.n_steps() / 6));
  raster.write_pgm(dir + "/pipeline_peak_velocity.pgm", raster.peak(), 0.0,
                   1.0);
  std::printf("[6] wrote %d snapshots + peak-velocity map to %s\n", snap,
              dir.c_str());

  // Seismogram CSV from the parallel run.
  std::vector<std::string> names = {"t", "rx0_ux", "rx1_ux"};
  std::vector<std::vector<double>> cols(3);
  for (int k = 0; k < pr.n_steps; ++k) {
    cols[0].push_back((k + 1) * pr.dt);
    cols[1].push_back(pr.receiver_histories[0][static_cast<std::size_t>(k)][0]);
    cols[2].push_back(pr.receiver_histories[1][static_cast<std::size_t>(k)][0]);
  }
  util::write_csv(dir + "/pipeline_seismograms.csv", names, cols);
  std::printf("[7] wrote %s/pipeline_seismograms.csv\n", dir.c_str());
  return 0;
}
