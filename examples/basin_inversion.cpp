// Multiscale material inversion of a 2D basin cross-section (Fig 3.2):
// synthesize surface records from a target shear-velocity section, then
// invert for it from a homogeneous initial guess through a ladder of
// material grids, writing the recovered vs field per stage as PGM images.
//
//   ./basin_inversion [output_dir]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "quake/inverse/material_inversion.hpp"
#include "quake/util/io.hpp"
#include "quake/util/rng.hpp"
#include "quake/util/stats.hpp"
#include "quake/vel/model.hpp"

namespace {

using namespace quake;

// Target section: shear modulus sampled from a vertical cross-section of
// the synthetic LA basin model.
std::vector<double> target_mu(const wave2d::ShGrid& g, double rho) {
  const vel::BasinModel basin = vel::BasinModel::demo(g.width());
  std::vector<double> mu(static_cast<std::size_t>(g.n_elems()));
  for (int e = 0; e < g.n_elems(); ++e) {
    const int i = e % g.nx, k = e / g.nx;
    const double x = (i + 0.5) * g.h;
    const double z = (k + 0.5) * g.h;
    // Section through the deeper depression; clamp vs so the wave grid
    // resolves the shortest wavelengths.
    const double vs =
        std::clamp(basin.at(x, 0.55 * g.width(), z).vs(), 800.0, 3200.0);
    mu[static_cast<std::size_t>(e)] = rho * vs * vs;
  }
  return mu;
}

void write_vs_image(const std::string& path, const wave2d::ShGrid& g,
                    std::span<const double> mu, double rho) {
  std::vector<double> vs(mu.size());
  for (std::size_t e = 0; e < mu.size(); ++e) vs[e] = std::sqrt(mu[e] / rho);
  util::write_pgm(path, vs, g.nx, g.nz, 700.0, 3300.0);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const double rho = 2200.0;
  const wave2d::ShGrid grid{56, 32, 625.0};  // 35 km x 20 km section

  const std::vector<double> mu_true = target_mu(grid, rho);
  write_vs_image(out_dir + "/inversion_target.pgm", grid, mu_true, rho);

  // Fault perpendicular to the section, mid-basin.
  inverse::InversionSetup setup;
  setup.grid = grid;
  setup.rho = rho;
  setup.fault = {grid.nx / 2, 8, 24};
  setup.source = wave2d::make_rupture_params(grid, setup.fault, /*u0=*/1.5,
                                             /*t0=*/1.5, /*hypo_k=*/16,
                                             /*vr=*/2800.0);
  for (int i = 1; i < grid.nx; ++i) {
    setup.receiver_nodes.push_back(grid.node(i, 0));
  }
  const wave2d::ShModel truth(grid, std::vector<double>(mu_true), rho);
  setup.dt = truth.stable_dt(0.4);
  setup.nt = 380;

  {
    inverse::InversionSetup gen = setup;
    const inverse::InversionProblem p0(gen);
    setup.observations = p0.forward(truth, setup.source, false).march.records;
  }
  // 5% additive noise, as in the paper's experiment.
  util::Rng rng(2026);
  double rms = 0.0;
  std::size_t cnt = 0;
  for (const auto& rec : setup.observations) {
    for (double v : rec) {
      rms += v * v;
      ++cnt;
    }
  }
  rms = std::sqrt(rms / static_cast<double>(cnt));
  for (auto& rec : setup.observations) {
    for (double& v : rec) v += 0.05 * rms * rng.normal();
  }

  const inverse::InversionProblem prob(setup);
  inverse::MaterialInversionOptions mo;
  mo.stages = {{1, 1}, {2, 2}, {4, 3}, {8, 5}, {16, 10}, {28, 16}};
  mo.max_newton = 10;
  mo.cg = {12, 1e-1};
  mo.beta_tv = 1e-14;
  mo.tv_eps = 5e7;
  mo.mu_min = 5e8;
  mo.initial_mu = rho * 1800.0 * 1800.0;  // homogeneous guess
  mo.grad_tol = 5e-3;
  mo.frankel_sweeps = 2;
  // Frequency continuation: low band first (§3.1).
  mo.stage_f_cut = {0.15, 0.2, 0.3, 0.45, 0.7, 0.0};

  std::printf("inverting %d-element section from %zu receivers (5%% noise)\n",
              grid.n_elems(), setup.receiver_nodes.size());
  const auto res = inverse::invert_material(prob, mo, mu_true);

  std::printf("%8s %8s %8s %10s %12s %12s\n", "grid", "params", "newton",
              "cg iters", "misfit", "model err");
  for (const auto& s : res.stages) {
    std::printf("%4dx%-3d %8zu %8d %10d %12.4e %11.1f%%\n", s.gx, s.gz,
                s.n_params, s.newton_iters, s.cg_iters, s.misfit_final,
                100.0 * s.model_error);
  }
  write_vs_image(out_dir + "/inversion_final.pgm", grid, res.mu, rho);
  std::printf("wrote %s/inversion_{target,final}.pgm\n", out_dir.c_str());
  return 0;
}
