// Etree mesh-generation walkthrough (Fig 2.1): construct -> balance ->
// transform, in core and out of core, with database statistics.
//
//   ./meshgen_demo [work_dir]

#include <cstdio>
#include <string>

#include "quake/mesh/meshgen.hpp"
#include "quake/octree/etree_store.hpp"
#include "quake/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace quake;
  const std::string work_dir = argc > 1 ? argv[1] : "/tmp";

  const double extent = 20000.0;
  const vel::BasinModel model = vel::BasinModel::demo(extent);
  mesh::MeshOptions opt;
  opt.domain_size = extent;
  opt.f_max = 0.3;
  opt.n_lambda = 8.0;
  opt.min_level = 3;
  opt.max_level = 6;

  // Step 1: construct — wavelength-adaptive refinement via auto-navigation.
  util::Timer timer;
  const octree::LinearOctree constructed =
      octree::build_octree(mesh::wavelength_policy(model, opt), opt.max_level);
  std::printf("construct: %zu octants (%.3f s)\n", constructed.size(),
              timer.seconds());

  // Step 2: balance — enforce the 2-to-1 constraint.
  timer.reset();
  const octree::LinearOctree balanced =
      octree::balance(constructed, octree::BalanceScope::kAll);
  std::printf("balance:   %zu octants, +%zu from balancing (%.3f s)\n",
              balanced.size(), balanced.size() - constructed.size(),
              timer.seconds());
  auto hist = balanced.level_histogram();
  for (std::size_t l = 0; l < hist.size(); ++l) {
    if (hist[l] > 0) {
      std::printf("  level %2zu: %8zu leaves (h = %.0f m)\n", l, hist[l],
                  extent / (1 << l));
    }
  }

  // Step 3: transform — elements, nodes, hanging constraints.
  timer.reset();
  const mesh::HexMesh mesh = mesh::transform(balanced, model, opt);
  std::printf("transform: %zu elements, %zu nodes, %zu hanging (%.3f s)\n",
              mesh.n_elements(), mesh.n_nodes(), mesh.n_hanging(),
              timer.seconds());

  // The same pipeline through the disk-backed etree store.
  timer.reset();
  const std::string store_path = work_dir + "/meshgen_demo.etree";
  const mesh::HexMesh ooc = mesh::generate_mesh_out_of_core(model, opt, store_path);
  std::printf("out-of-core pipeline: %zu elements (%.3f s), store at %s\n",
              ooc.n_elements(), timer.seconds(), store_path.c_str());
  {
    octree::EtreeStore store(store_path + ".balanced", sizeof(double), 32,
                             /*create=*/false);
    const auto st = store.stats();
    std::printf("balanced store: %llu records; this session: %llu page reads, "
                "%llu cache hits\n",
                static_cast<unsigned long long>(store.count()),
                static_cast<unsigned long long>(st.page_reads),
                static_cast<unsigned long long>(st.cache_hits));
  }

  const auto stats = mesh::compute_stats(mesh, model, opt);
  std::printf("multiresolution saving vs uniform grid: %.0fx fewer points\n",
              stats.uniform_equivalent_points /
                  static_cast<double>(stats.n_nodes));
  return 0;
}
