// Source inversion demo (Fig 3.3): with the material model known, recover
// the rupture's delay time T(z), dislocation amplitude u0(z), and rise time
// t0(z) along the fault from surface records.
//
//   ./source_inversion

#include <cmath>
#include <cstdio>
#include <vector>

#include "quake/inverse/source_inversion.hpp"

int main() {
  using namespace quake;
  const double rho = 2200.0;
  const wave2d::ShGrid grid{48, 28, 250.0};  // 12 km x 7 km section

  // Layered-ish material: stiffening with depth.
  std::vector<double> mu(static_cast<std::size_t>(grid.n_elems()));
  for (int e = 0; e < grid.n_elems(); ++e) {
    const int k = e / grid.nx;
    const double vs = 900.0 + 80.0 * k;
    mu[static_cast<std::size_t>(e)] = rho * vs * vs;
  }
  const wave2d::ShModel model(grid, std::vector<double>(mu), rho);

  inverse::InversionSetup setup;
  setup.grid = grid;
  setup.rho = rho;
  setup.fault = {grid.nx / 2, 6, 20};
  // Target: rupture from a mid-fault hypocenter with a tapered slip profile.
  setup.source = wave2d::make_rupture_params(grid, setup.fault, 1.0, 0.8,
                                             /*hypo_k=*/13, /*vr=*/2500.0);
  const int np = setup.fault.n_points();
  for (int j = 0; j < np; ++j) {
    const double s = static_cast<double>(j) / (np - 1);
    setup.source.u0[static_cast<std::size_t>(j)] =
        1.0 + 0.2 * std::sin(3.14159 * s);  // slip bulge mid-fault
  }
  for (int i = 1; i < grid.nx; ++i) {
    setup.receiver_nodes.push_back(grid.node(i, 0));
  }
  setup.dt = model.stable_dt(0.4);
  setup.nt = 420;
  {
    inverse::InversionSetup gen = setup;
    const inverse::InversionProblem p0(gen);
    setup.observations = p0.forward(model, setup.source, false).march.records;
  }

  const inverse::InversionProblem prob(setup);
  inverse::SourceInversionOptions so;
  so.max_newton = 18;
  so.cg = {15, 1e-1};
  so.beta_u0 = so.beta_t0 = so.beta_T = 1e-3;
  so.u0_init = 0.7;
  so.t0_init = 1.2;
  so.T_init = 0.4;
  so.grad_tol = 1e-5;

  const auto res = inverse::invert_source(prob, model, so);
  std::printf("source inversion: %d Newton, %d CG iterations; misfit %.3e -> %.3e\n",
              res.newton_iters, res.cg_iters, res.iterates.front().misfit,
              res.misfit_final);

  const auto& p5 =
      res.iterates[std::min<std::size_t>(5, res.iterates.size() - 1)].params;
  std::printf("%4s | %21s | %21s | %21s\n", "node", "T: tgt init 5th final",
              "u0: tgt init 5th final", "t0: tgt init 5th final");
  for (int j = 0; j < np; ++j) {
    const auto sj = static_cast<std::size_t>(j);
    std::printf(
        "%4d | %5.2f %5.2f %5.2f %5.2f | %5.2f %5.2f %5.2f %5.2f | %5.2f "
        "%5.2f %5.2f %5.2f\n",
        j, setup.source.T[sj], res.iterates.front().params.T[sj], p5.T[sj],
        res.params.T[sj], setup.source.u0[sj],
        res.iterates.front().params.u0[sj], p5.u0[sj], res.params.u0[sj],
        setup.source.t0[sj], res.iterates.front().params.t0[sj], p5.t0[sj],
        res.params.t0[sj]);
  }
  return 0;
}
