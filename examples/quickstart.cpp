// Quickstart: mesh a small heterogeneous basin, run a point-source
// simulation, and write surface seismograms to CSV.
//
//   ./quickstart [output_dir]
//
// This walks the full forward pipeline of the library in ~50 lines of user
// code: velocity model -> wavelength-adaptive octree mesh -> matrix-free
// elastic operator -> explicit solver -> receivers.

#include <cstdio>
#include <string>
#include <vector>

#include "quake/mesh/meshgen.hpp"
#include "quake/solver/elastic_operator.hpp"
#include "quake/solver/explicit_solver.hpp"
#include "quake/solver/source.hpp"
#include "quake/util/io.hpp"

int main(int argc, char** argv) {
  using namespace quake;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // A 10 km synthetic basin: soft sediments over rock.
  const double extent = 10000.0;
  const vel::BasinModel model = vel::BasinModel::demo(extent);

  mesh::MeshOptions mopt;
  mopt.domain_size = extent;
  mopt.f_max = 0.4;       // resolve up to 0.4 Hz
  mopt.n_lambda = 8.0;    // grid points per shortest wavelength
  mopt.min_level = 3;
  mopt.max_level = 6;
  const mesh::HexMesh mesh = mesh::generate_mesh(model, mopt);
  const mesh::MeshStats stats = mesh::compute_stats(mesh, model, mopt);
  std::printf("mesh: %zu elements, %zu nodes (%zu hanging), levels %d..%d\n",
              stats.n_elements, stats.n_nodes, stats.n_hanging,
              stats.min_level, stats.max_level);
  std::printf("uniform grid at the finest wavelength would need %.2e points "
              "(%.0fx more)\n",
              stats.uniform_equivalent_points,
              stats.uniform_equivalent_points /
                  static_cast<double>(stats.n_nodes));

  // Matrix-free elastodynamic operator with Stacey absorbing boundaries.
  solver::OperatorOptions oopt;
  oopt.abc = fem::AbcType::kStacey;
  const solver::ElasticOperator op(mesh, oopt);

  solver::SolverOptions sopt;
  sopt.t_end = 6.0;
  sopt.cfl_fraction = 0.4;
  solver::ExplicitSolver solver(op, sopt);

  // A buried Ricker point source and a line of surface receivers.
  const solver::PointSource source(mesh, {0.5 * extent, 0.5 * extent, 2500.0},
                                   {1.0, 0.0, 0.0}, /*amplitude=*/1e15,
                                   /*fp=*/0.25, /*tc=*/2.0);
  solver.add_source(&source);
  std::vector<std::size_t> receivers;
  for (int i = 1; i <= 4; ++i) {
    receivers.push_back(
        solver.add_receiver({i * extent / 5.0, 0.5 * extent, 0.0}));
  }

  solver.run();
  std::printf("ran %d steps, dt = %.4f s, sustained %.0f Mflop/s\n",
              solver.n_steps(), solver.dt(),
              static_cast<double>(solver.total_flops()) /
                  solver.elapsed_seconds() * 1e-6);

  // Write the x-component seismograms.
  std::vector<std::string> names = {"t"};
  std::vector<std::vector<double>> cols(1);
  for (int k = 0; k < solver.n_steps(); ++k) {
    cols[0].push_back((k + 1) * solver.dt());
  }
  for (std::size_t r = 0; r < receivers.size(); ++r) {
    names.push_back("ux_rx" + std::to_string(r));
    cols.push_back(solver.receiver_component(receivers[r], 0));
  }
  const std::string path = out_dir + "/quickstart_seismograms.csv";
  util::write_csv(path, names, cols);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
