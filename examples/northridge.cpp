// Northridge-style scenario: an extended strike-slip fault rupturing inside
// a synthetic LA-like basin, run in parallel across SPMD ranks, with surface
// velocity snapshots written as PGM images (the Fig 2.5 visualization).
//
//   ./northridge [output_dir] [n_ranks]

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "quake/mesh/meshgen.hpp"
#include "quake/par/parallel_solver.hpp"
#include "quake/par/partition.hpp"
#include "quake/solver/elastic_operator.hpp"
#include "quake/solver/explicit_solver.hpp"
#include "quake/solver/source.hpp"
#include "quake/util/io.hpp"

int main(int argc, char** argv) {
  using namespace quake;
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const int n_ranks = argc > 2 ? std::atoi(argv[2]) : 4;

  const double extent = 20000.0;
  const vel::BasinModel model = vel::BasinModel::demo(extent);

  mesh::MeshOptions mopt;
  mopt.domain_size = extent;
  mopt.f_max = 0.25;
  mopt.n_lambda = 8.0;
  mopt.min_level = 3;
  mopt.max_level = 6;
  const mesh::HexMesh mesh = mesh::generate_mesh(model, mopt);
  std::printf("mesh: %zu elements, %zu nodes\n", mesh.n_elements(),
              mesh.n_nodes());

  // Extended vertical strike-slip fault through the deeper depression;
  // rupture nucleates at depth and spreads along strike (the directivity
  // visible in the snapshots mirrors the 1994 event's pattern).
  solver::FaultSource::Spec fs;
  fs.y = 0.55 * extent;
  fs.x0 = 0.30 * extent;
  fs.x1 = 0.65 * extent;
  fs.z_top = 1000.0;
  fs.z_bot = 5000.0;
  fs.hypocenter = {0.35 * extent, 4000.0};
  fs.rupture_velocity = 2800.0;
  fs.rise_time = 1.0;
  fs.slip = 1.5;
  const solver::FaultSource source(mesh, fs);
  std::printf("fault: %zu patches\n", source.n_patches());

  solver::OperatorOptions oopt;
  oopt.abc = fem::AbcType::kStacey;
  oopt.rayleigh = true;
  oopt.damping_f_min = 0.02;
  oopt.damping_f_max = 0.25;

  // Serial run for the snapshots (the snapshot hook lives on the serial
  // driver); the parallel run below cross-checks receivers and reports the
  // per-rank statistics.
  const solver::ElasticOperator op(mesh, oopt);
  solver::SolverOptions sopt;
  sopt.t_end = 12.0;
  sopt.cfl_fraction = 0.4;
  solver::ExplicitSolver solver(op, sopt);
  solver.add_source(&source);
  const std::size_t rx =
      solver.add_receiver({0.7 * extent, 0.55 * extent, 0.0});

  // Raster of surface nodes for imaging.
  const int img = 160;
  std::vector<mesh::NodeId> surface_pixel(static_cast<std::size_t>(img) * img);
  {
    std::vector<double> best(static_cast<std::size_t>(img) * img, 1e30);
    for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
      const auto& c = mesh.node_coords[n];
      if (c[2] > 1.0) continue;  // surface nodes only
      const int ix = std::min(img - 1, static_cast<int>(c[0] / extent * img));
      const int iy = std::min(img - 1, static_cast<int>(c[1] / extent * img));
      const std::size_t p = static_cast<std::size_t>(iy) * img + ix;
      // Keep the node closest to the pixel center.
      const double px = (ix + 0.5) * extent / img, py = (iy + 0.5) * extent / img;
      const double d = std::hypot(c[0] - px, c[1] - py);
      if (d < best[p]) {
        best[p] = d;
        surface_pixel[p] = static_cast<mesh::NodeId>(n);
      }
    }
  }

  int snap_id = 0;
  auto snapshot = [&](int, double t, std::span<const double>,
                      std::span<const double> v) {
    std::vector<double> mag(surface_pixel.size());
    for (std::size_t p = 0; p < surface_pixel.size(); ++p) {
      const std::size_t base = 3 * static_cast<std::size_t>(surface_pixel[p]);
      mag[p] = std::sqrt(v[base] * v[base] + v[base + 1] * v[base + 1] +
                         v[base + 2] * v[base + 2]);
    }
    char name[64];
    std::snprintf(name, sizeof name, "/northridge_snap_%02d_t%.1fs.pgm",
                  snap_id++, t);
    util::write_pgm(out_dir + name, mag, img, img, 0.0, 0.4);
  };
  const int every = std::max(1, solver.n_steps() / 8);
  solver.run(snapshot, every);
  std::printf("serial: %d steps, %.0f Mflop/s, wrote %d snapshots\n",
              solver.n_steps(),
              static_cast<double>(solver.total_flops()) /
                  solver.elapsed_seconds() * 1e-6,
              snap_id);

  // Parallel cross-check, with checkpoint/restart enabled: each rank writes
  // a CRC-verified snapshot every ~10% of the run, and a failed attempt is
  // retried from the newest snapshot all ranks agree on (see DESIGN.md,
  // "Fault tolerance & checkpointing"). Snapshots are removed on success.
  const par::Partition part = par::partition_sfc(mesh, n_ranks);
  const solver::SourceModel* sources[] = {&source};
  const std::array<double, 3> rxs[] = {{0.7 * extent, 0.55 * extent, 0.0}};
  par::FaultToleranceOptions ft;
  ft.checkpoint_dir = out_dir;
  ft.checkpoint_every = std::max(1, solver.n_steps() / 10);
  ft.max_retries = 2;
  const par::ParallelResult pr =
      par::run_parallel(mesh, part, oopt, sopt, sources, rxs, ft);
  double max_err = 0.0;
  for (std::size_t k = 0; k < pr.receiver_histories[0].size(); ++k) {
    for (int c = 0; c < 3; ++c) {
      max_err = std::max(
          max_err, std::abs(pr.receiver_histories[0][k][static_cast<std::size_t>(c)] -
                            solver.receivers()[0].u[k][static_cast<std::size_t>(c)]));
    }
  }
  std::printf("parallel (%d ranks): receiver max |serial - parallel| = %.2e\n",
              n_ranks, max_err);
  for (std::size_t r = 0; r < pr.rank_stats.size(); ++r) {
    const auto& s = pr.rank_stats[r];
    std::printf("  rank %zu: %zu elems, %zu nodes, %zu neighbors, "
                "%zu doubles/step sent\n",
                r, s.n_elems, s.n_local_nodes, s.n_neighbors,
                s.doubles_sent_per_step);
  }
  (void)rx;
  return 0;
}
